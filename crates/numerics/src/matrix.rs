//! Dense matrices and LU factorization with partial pivoting.
//!
//! The MNA systems assembled by `finrad-spice` are small (≈ 10 unknowns for
//! a 6T SRAM cell), so a dense O(n³) factorization is the right tool; no
//! sparse machinery is warranted.

use crate::NumericsError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use finrad_numerics::matrix::Matrix;
///
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 3.0;
/// assert_eq!(a[(0, 0)], 2.0);
/// assert_eq!(a.rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Dimension`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumericsError> {
        if data.len() != rows * cols {
            return Err(NumericsError::Dimension {
                expected: format!("{} elements", rows * cols),
                got: format!("{}", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `value` to entry `(r, c)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, value: f64) {
        self[(r, c)] += value;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Dimension`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::Dimension {
                expected: format!("vector of length {}", self.cols),
                got: format!("{}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Maximum absolute entry (∞-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// # Examples
///
/// ```
/// use finrad_numerics::matrix::{Matrix, LuFactors};
///
/// let a = Matrix::from_rows(2, 2, vec![0.0, 2.0, 1.0, 1.0])?;
/// let lu = LuFactors::factor(a)?;
/// let x = lu.solve(&[2.0, 3.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
}

/// Pivots smaller than this (relative to the largest entry of their column)
/// are treated as exact zeros.
const PIVOT_EPS: f64 = 1.0e-300;

impl LuFactors {
    /// Factors a square matrix in place.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::Dimension`] if the matrix is not square.
    /// * [`NumericsError::SingularMatrix`] if a pivot underflows.
    pub fn factor(mut a: Matrix) -> Result<Self, NumericsError> {
        if a.rows != a.cols {
            return Err(NumericsError::Dimension {
                expected: "square matrix".to_owned(),
                got: format!("{}x{}", a.rows, a.cols),
            });
        }
        let n = a.rows;
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut pmax = a[(k, k)].abs();
            for r in (k + 1)..n {
                let v = a[(r, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = r;
                }
            }
            if pmax < PIVOT_EPS || !pmax.is_finite() {
                return Err(NumericsError::SingularMatrix { column: k });
            }
            if p != k {
                perm.swap(p, k);
                for c in 0..n {
                    let tmp = a[(k, c)];
                    a[(k, c)] = a[(p, c)];
                    a[(p, c)] = tmp;
                }
            }
            // Eliminate below the pivot.
            let pivot = a[(k, k)];
            for r in (k + 1)..n {
                let factor = a[(r, k)] / pivot;
                a[(r, k)] = factor;
                // Exact-zero skip exploits structural sparsity; a tolerance would
                // change the factorization. finrad-lint: allow(float-discipline)
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        let akc = a[(k, c)];
                        a[(r, c)] -= factor * akc;
                    }
                }
            }
        }
        Ok(Self { lu: a, perm })
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Dimension`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(NumericsError::Dimension {
                expected: format!("rhs of length {n}"),
                got: format!("{}", b.len()),
            });
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc;
        }
        // Backward substitution with U.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Dimension of the factored system.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.rows
    }

    /// The row permutation chosen by partial pivoting: position `i` of the
    /// permuted system holds original row `perm()[i]`. Used to seed a
    /// [`StructuredLu`] with a pivot order known to be stable for the
    /// matrix family at hand.
    #[inline]
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }
}

/// Pivots smaller than this fraction of the largest magnitude in their
/// elimination column trip the [`StructuredLu`] stability guard, forcing the
/// caller back to dense partial pivoting.
const STRUCTURED_PIVOT_RTOL: f64 = 1.0e-6;

/// LU factorization specialized to a *fixed* sparsity pattern and pivot
/// order, for matrix families whose structure never changes — the MNA
/// system of one circuit topology re-assembled every Newton iteration.
///
/// The expensive decisions of a general factorization (which entries can be
/// nonzero, where fill-in lands, which row pivots where) are made **once**,
/// in [`StructuredLu::analyze`], from a structural stamp mask and a pivot
/// order taken from a representative dense factorization. Every subsequent
/// [`StructuredLu::factor`] call then runs the elimination over only the
/// symbolic nonzeros — no pivot search, no scans over structural zeros —
/// and [`StructuredLu::solve`] substitutes over the same index lists.
///
/// Because the pivot order is frozen, each numeric factorization checks a
/// stability guard: a pivot smaller than `1e-6 ×` the largest magnitude in
/// its elimination column returns [`NumericsError::SingularMatrix`], and
/// the caller is expected to fall back to [`LuFactors`] (and may re-analyze
/// with the fresh pivot order).
///
/// # Examples
///
/// ```
/// use finrad_numerics::matrix::{LuFactors, Matrix, StructuredLu};
///
/// let a = Matrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0])?;
/// let dense = LuFactors::factor(a.clone())?;
/// let mut slu = StructuredLu::analyze(&a, dense.perm().to_vec())?;
/// slu.factor(&a)?;
/// let x = slu.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StructuredLu {
    /// Dense storage for the permuted factors (small n: dense rows, sparse
    /// *loop structure* is where the win is).
    lu: Matrix,
    /// Row permutation: permuted position `i` holds original row `perm[i]`.
    perm: Vec<usize>,
    /// Symbolic pattern of the permuted, fill-extended matrix (row-major).
    pattern: Vec<bool>,
    /// For each elimination column `k`: permuted rows `r > k` with a
    /// symbolic nonzero at `(r, k)` — the L column below the pivot.
    lower: Vec<Vec<usize>>,
    /// For each permuted row `k`: columns `c > k` with a symbolic nonzero
    /// at `(k, c)` — the U row right of the pivot.
    upper: Vec<Vec<usize>>,
}

impl StructuredLu {
    /// Runs the one-time symbolic analysis: propagates fill-in through the
    /// permuted pattern of `mask` under the fixed pivot order `perm`.
    ///
    /// `mask` is a *structural* stamp mask: entry `(r, c)` is treated as a
    /// potential nonzero iff it is nonzero in the mask. Build it from which
    /// positions are ever **stamped**, not from a numeric instance —
    /// a value that happens to be `0.0` in one assembly may be nonzero in
    /// the next, and a pattern derived from it would silently drop terms.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Dimension`] if `mask` is not square or
    /// `perm` is not a permutation of `0..n`.
    pub fn analyze(mask: &Matrix, perm: Vec<usize>) -> Result<Self, NumericsError> {
        let n = mask.rows();
        if mask.cols() != n {
            return Err(NumericsError::Dimension {
                expected: "square mask".to_owned(),
                got: format!("{}x{}", mask.rows(), mask.cols()),
            });
        }
        let mut seen = vec![false; n];
        if perm.len() != n
            || !perm
                .iter()
                .all(|&p| p < n && !std::mem::replace(&mut seen[p], true))
        {
            return Err(NumericsError::Dimension {
                expected: format!("permutation of 0..{n}"),
                got: format!("{perm:?}"),
            });
        }
        // Permuted structural pattern.
        let mut pattern = vec![false; n * n];
        for i in 0..n {
            for c in 0..n {
                // Mask entries are structural flags; zero means "never
                // stamped". finrad-lint: allow(float-discipline)
                pattern[i * n + c] = mask[(perm[i], c)] != 0.0;
            }
        }
        // Symbolic elimination: fill-in at (r, c) whenever row r has a
        // nonzero in pivot column k and pivot row k has one in column c.
        for k in 0..n {
            for r in (k + 1)..n {
                if pattern[r * n + k] {
                    for c in (k + 1)..n {
                        if pattern[k * n + c] {
                            pattern[r * n + c] = true;
                        }
                    }
                }
            }
        }
        let lower: Vec<Vec<usize>> = (0..n)
            .map(|k| ((k + 1)..n).filter(|&r| pattern[r * n + k]).collect())
            .collect();
        let upper: Vec<Vec<usize>> = (0..n)
            .map(|k| ((k + 1)..n).filter(|&c| pattern[k * n + c]).collect())
            .collect();
        Ok(Self {
            lu: Matrix::zeros(n, n),
            perm,
            pattern,
            lower,
            upper,
        })
    }

    /// Numerically factors `a` over the pre-analyzed pattern, reusing the
    /// internal storage (no allocation after the first call).
    ///
    /// # Errors
    ///
    /// * [`NumericsError::Dimension`] if `a` does not match the analyzed
    ///   dimension.
    /// * [`NumericsError::SingularMatrix`] if a pivot fails the relative
    ///   stability guard — the signal to fall back to dense partial
    ///   pivoting.
    pub fn factor(&mut self, a: &Matrix) -> Result<(), NumericsError> {
        let n = self.lu.rows();
        if a.rows() != n || a.cols() != n {
            return Err(NumericsError::Dimension {
                expected: format!("{n}x{n} matrix"),
                got: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        for i in 0..n {
            for c in 0..n {
                let v = a[(self.perm[i], c)];
                debug_assert!(
                    // finrad-lint: allow(float-discipline)
                    v == 0.0 || self.pattern[i * n + c],
                    "value {v} at permuted ({i}, {c}) outside the analyzed pattern"
                );
                self.lu[(i, c)] = v;
            }
        }
        for k in 0..n {
            let pivot = self.lu[(k, k)];
            let mut col_max = pivot.abs();
            for &r in &self.lower[k] {
                col_max = col_max.max(self.lu[(r, k)].abs());
            }
            if !(pivot.abs() >= STRUCTURED_PIVOT_RTOL * col_max && pivot.abs() >= PIVOT_EPS) {
                // NaN anywhere in the column also lands here.
                return Err(NumericsError::SingularMatrix { column: k });
            }
            for li in 0..self.lower[k].len() {
                let r = self.lower[k][li];
                let factor = self.lu[(r, k)] / pivot;
                self.lu[(r, k)] = factor;
                for ui in 0..self.upper[k].len() {
                    let c = self.upper[k][ui];
                    let akc = self.lu[(k, c)];
                    self.lu[(r, c)] -= factor * akc;
                }
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` with the stored factors, substituting over only
    /// the symbolic nonzeros.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Dimension`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericsError::Dimension {
                expected: format!("rhs of length {n}"),
                got: format!("{}", b.len()),
            });
        }
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution, column-oriented over the L pattern.
        for k in 0..n {
            let xk = x[k];
            for &r in &self.lower[k] {
                x[r] -= self.lu[(r, k)] * xk;
            }
        }
        // Backward substitution over the U pattern.
        for k in (0..n).rev() {
            let mut acc = x[k];
            for &c in &self.upper[k] {
                acc -= self.lu[(k, c)] * x[c];
            }
            x[k] = acc / self.lu[(k, k)];
        }
        Ok(x)
    }

    /// Dimension of the analyzed system.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Count of symbolic nonzeros after fill-in (diagnostics).
    pub fn nnz(&self) -> usize {
        self.pattern.iter().filter(|&&p| p).count()
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// Propagates factorization and dimension errors from [`LuFactors`].
///
/// # Examples
///
/// ```
/// use finrad_numerics::matrix::{solve, Matrix};
///
/// let a = Matrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0])?;
/// let x = solve(a, &[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
pub fn solve(a: Matrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
    LuFactors::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = solve(a, &b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-15);
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // a11 = 0 forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve(a, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        match LuFactors::factor(a) {
            Err(NumericsError::SingularMatrix { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::factor(a),
            Err(NumericsError::Dimension { .. })
        ));
    }

    #[test]
    fn residual_small_for_random_system() {
        // Deterministic pseudo-random fill (LCG) to avoid rand dependency here.
        let n = 12;
        let mut state = 0x2545F491_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = next();
            }
            a[(r, r)] += 4.0; // diagonally dominant => well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(a.clone(), &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn reuse_factors_for_multiple_rhs() {
        let a = Matrix::from_rows(3, 3, vec![2.0, 0.0, 1.0, 0.0, 3.0, 0.0, 1.0, 0.0, 2.0]).unwrap();
        let lu = LuFactors::factor(a.clone()).unwrap();
        for b in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [3.0, -1.0, 2.0]] {
            let x = lu.solve(&b).unwrap();
            let ax = a.mul_vec(&x).unwrap();
            for (axi, bi) in ax.iter().zip(&b) {
                assert!((axi - bi).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add_at(0, 0, 1.5);
        a.add_at(0, 0, 2.5);
        assert_eq!(a[(0, 0)], 4.0);
    }

    #[test]
    fn mul_vec_dimension_check() {
        let a = Matrix::zeros(2, 3);
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "matrix index out of bounds")]
    fn out_of_bounds_index_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    /// A sparse, diagonally-dominant system with the arrow shape typical of
    /// MNA (rails couple to everything).
    fn arrow_matrix(n: usize) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 5.0 + i as f64;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -0.5;
            }
            a[(i, n - 1)] = 1.0 + 0.1 * i as f64;
            a[(n - 1, i)] = 0.7;
        }
        a
    }

    #[test]
    fn structured_matches_dense_solution() {
        let a = arrow_matrix(8);
        let dense = LuFactors::factor(a.clone()).unwrap();
        let mut slu = StructuredLu::analyze(&a, dense.perm().to_vec()).unwrap();
        slu.factor(&a).unwrap();
        let b: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let xd = dense.solve(&b).unwrap();
        let xs = slu.solve(&b).unwrap();
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-12, "dense {d} vs structured {s}");
        }
    }

    #[test]
    fn structured_refactors_new_values_same_pattern() {
        // The point of the type: re-factor many matrices sharing one
        // pattern. Perturb values (keeping dominance) and check residuals.
        let a0 = arrow_matrix(7);
        let dense = LuFactors::factor(a0.clone()).unwrap();
        let mut slu = StructuredLu::analyze(&a0, dense.perm().to_vec()).unwrap();
        for shift in 0..5 {
            let mut a = a0.clone();
            for i in 0..7 {
                a[(i, i)] += 0.3 * shift as f64;
            }
            slu.factor(&a).unwrap();
            let b = [1.0, -1.0, 2.0, 0.0, 0.5, -2.0, 3.0];
            let x = slu.solve(&b).unwrap();
            let ax = a.mul_vec(&x).unwrap();
            for (axi, bi) in ax.iter().zip(&b) {
                assert!((axi - bi).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn structured_handles_fill_in() {
        // Pattern where elimination creates fill: (2,1) and (1,2) are
        // structural zeros of A but nonzero in the factors.
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 1.0, 1.0, 4.0, 0.0, 1.0, 0.0, 4.0]).unwrap();
        let mut slu = StructuredLu::analyze(&a, vec![0, 1, 2]).unwrap();
        assert_eq!(slu.nnz(), 9, "fill-in at (1,2) and (2,1) must be kept");
        slu.factor(&a).unwrap();
        let x = slu.solve(&[6.0, 5.0, 5.0]).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&[6.0, 5.0, 5.0]) {
            assert!((axi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn structured_pivot_guard_trips_on_unstable_pivot() {
        // Identity pivot order, but the (0,0) entry collapses relative to
        // its column: the frozen order would be unstable, so factor()
        // must refuse rather than produce garbage.
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0e-9]).unwrap();
        let mut slu = StructuredLu::analyze(&a, vec![0, 1]).unwrap();
        slu.factor(&a).unwrap(); // fine: pivot 1.0 dominates
        let bad = Matrix::from_rows(2, 2, vec![1.0e-9, 1.0, 1.0, 1.0]).unwrap();
        assert!(matches!(
            slu.factor(&bad),
            Err(NumericsError::SingularMatrix { column: 0 })
        ));
    }

    #[test]
    fn structured_rejects_nan_via_guard() {
        let a = Matrix::from_rows(2, 2, vec![f64::NAN, 0.0, 0.0, 1.0]).unwrap();
        let mask = Matrix::identity(2);
        let mut slu = StructuredLu::analyze(&mask, vec![0, 1]).unwrap();
        assert!(slu.factor(&a).is_err());
    }

    #[test]
    fn structured_rejects_bad_permutation() {
        let a = Matrix::identity(3);
        assert!(StructuredLu::analyze(&a, vec![0, 0, 2]).is_err());
        assert!(StructuredLu::analyze(&a, vec![0, 1]).is_err());
    }

    #[test]
    fn structured_with_pivoted_order_from_dense() {
        // A system the identity order cannot factor (zero leading pivot):
        // seeding from the dense partial-pivot order makes it work.
        let a = Matrix::from_rows(2, 2, vec![0.0, 2.0, 1.0, 1.0]).unwrap();
        let mask = Matrix::from_rows(2, 2, vec![1.0, 2.0, 1.0, 1.0]).unwrap();
        let dense = LuFactors::factor(a.clone()).unwrap();
        let mut slu = StructuredLu::analyze(&mask, dense.perm().to_vec()).unwrap();
        slu.factor(&a).unwrap();
        let x = slu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }
}
