//! Quadrature over tabulated and closed-form integrands.
//!
//! The FIT-rate integral of the paper (Eq. 7, discretized as Eq. 8) is a
//! flux-weighted sum over energy bins; these helpers do the bin bookkeeping
//! and the reference trapezoidal integration used to cross-check it.

/// Trapezoidal integral of samples `(xs[i], ys[i])`.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
///
/// # Examples
///
/// ```
/// use finrad_numerics::quadrature::trapezoid;
///
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 1.0, 2.0]; // y = x
/// assert!((trapezoid(&xs, &ys) - 2.0).abs() < 1e-12);
/// ```
pub fn trapezoid(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "abscissa/ordinate length mismatch");
    assert!(xs.len() >= 2, "need at least two samples");
    xs.windows(2)
        .zip(ys.windows(2))
        .map(|(xw, yw)| 0.5 * (yw[0] + yw[1]) * (xw[1] - xw[0]))
        .sum()
}

/// Trapezoidal integral of a function `f` over `[a, b]` with `n` panels.
///
/// # Panics
///
/// Panics if `n == 0` or `b < a`.
pub fn trapezoid_fn(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "need at least one panel");
    assert!(b >= a, "inverted integration bounds");
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + h * i as f64);
    }
    acc * h
}

/// An energy bin used to discretize a particle spectrum (the paper's Eq. 8):
/// a representative energy plus the integral flux over the bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Lower bin edge.
    pub lo: f64,
    /// Upper bin edge.
    pub hi: f64,
    /// Representative abscissa (geometric mean for log bins).
    pub representative: f64,
}

impl Bin {
    /// Width of the bin.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Splits `[lo, hi]` into `n` logarithmically spaced bins whose
/// representative point is the geometric mean of the edges.
///
/// # Panics
///
/// Panics if `lo <= 0`, `hi <= lo`, or `n == 0`.
///
/// # Examples
///
/// ```
/// use finrad_numerics::quadrature::log_bins;
///
/// let bins = log_bins(0.1, 100.0, 3);
/// assert_eq!(bins.len(), 3);
/// assert!((bins[0].lo - 0.1).abs() < 1e-12);
/// assert!((bins[2].hi - 100.0).abs() < 1e-9);
/// // Representative is the geometric mean of the edges.
/// let b = &bins[1];
/// assert!((b.representative - (b.lo * b.hi).sqrt()).abs() < 1e-9);
/// ```
pub fn log_bins(lo: f64, hi: f64, n: usize) -> Vec<Bin> {
    assert!(lo > 0.0 && hi > lo && n > 0, "invalid log_bins arguments");
    let (llo, lhi) = (lo.log10(), hi.log10());
    (0..n)
        .map(|i| {
            let a = 10f64.powf(llo + (lhi - llo) * i as f64 / n as f64);
            let b = 10f64.powf(llo + (lhi - llo) * (i + 1) as f64 / n as f64);
            Bin {
                lo: a,
                hi: b,
                representative: (a * b).sqrt(),
            }
        })
        .collect()
}

/// Splits `[lo, hi]` into `n` equal-width bins with midpoint representatives.
///
/// # Panics
///
/// Panics if `hi <= lo` or `n == 0`.
pub fn linear_bins(lo: f64, hi: f64, n: usize) -> Vec<Bin> {
    assert!(hi > lo && n > 0, "invalid linear_bins arguments");
    let h = (hi - lo) / n as f64;
    (0..n)
        .map(|i| {
            let a = lo + h * i as f64;
            let b = lo + h * (i + 1) as f64;
            Bin {
                lo: a,
                hi: b,
                representative: 0.5 * (a + b),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_linear_function_exact() {
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let expect = {
            let b = 3.0;
            b * b + b // integral of 2x+1 from 0 to 3
        };
        assert!((trapezoid(&xs, &ys) - expect).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_fn_converges_quadratically() {
        let exact = 1.0 - (-1.0f64).exp(); // ∫0..1 e^-x
        let coarse = (trapezoid_fn(|x| (-x).exp(), 0.0, 1.0, 10) - exact).abs();
        let fine = (trapezoid_fn(|x| (-x).exp(), 0.0, 1.0, 100) - exact).abs();
        assert!(fine < coarse / 50.0);
    }

    #[test]
    fn bins_tile_the_domain() {
        let bins = log_bins(0.1, 100.0, 7);
        for w in bins.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-9 * w[0].hi);
        }
        let lins = linear_bins(0.0, 10.0, 5);
        assert!((lins.iter().map(Bin::width).sum::<f64>() - 10.0).abs() < 1e-12);
        for b in &lins {
            assert!(b.representative > b.lo && b.representative < b.hi);
        }
    }

    #[test]
    fn binned_sum_approximates_integral() {
        // ∫ x^-2 over [1, 100] = 1 - 0.01 = 0.99, via representative * width.
        let bins = log_bins(1.0, 100.0, 400);
        let approx: f64 = bins
            .iter()
            .map(|b| b.representative.powi(-2) * b.width())
            .sum();
        assert!((approx - 0.99).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn trapezoid_length_mismatch_panics() {
        let _ = trapezoid(&[0.0, 1.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid log_bins")]
    fn log_bins_rejects_nonpositive() {
        let _ = log_bins(0.0, 1.0, 3);
    }
}
