//! Numerical kernels shared across the `finrad` workspace.
//!
//! This crate provides exactly the numerics the cross-layer soft-error flow
//! needs, with no external linear-algebra dependencies:
//!
//! * [`matrix`] — a dense column-major matrix and an LU factorization with
//!   partial pivoting, used by the modified-nodal-analysis (MNA) circuit
//!   solver in `finrad-spice`.
//! * [`interp`] — monotone piecewise-linear interpolation tables in linear
//!   and log–log space, the backing store for the paper's device-level LUTs.
//! * [`quadrature`] — trapezoidal integration over tabulated functions,
//!   used for flux-spectrum integrals (the paper's Eq. 7/8).
//! * [`stats`] — streaming mean/variance accumulators with normal-theory
//!   confidence intervals for Monte-Carlo estimates.
//! * [`roots`] — bisection root bracketing/refinement, used for
//!   critical-charge extraction.
//! * [`rng`] — seeded-only pseudo-random number generation (SplitMix64 and
//!   xoshiro256++) for deterministic, reproducible Monte-Carlo sampling.
//!
//! # Examples
//!
//! ```
//! use finrad_numerics::interp::LinearTable;
//!
//! let table = LinearTable::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
//! assert_eq!(table.eval(0.5), 5.0);
//! # Ok::<(), finrad_numerics::NumericsError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod interp;
pub mod matrix;
pub mod quadrature;
pub mod rng;
pub mod roots;
pub mod special;
pub mod stats;

use std::error::Error;
use std::fmt;

/// Errors produced by the numerics kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A matrix or system had incompatible or invalid dimensions.
    Dimension {
        /// What was expected.
        expected: String,
        /// What was provided.
        got: String,
    },
    /// LU factorization hit a pivot below the singularity threshold.
    SingularMatrix {
        /// Column at which the zero pivot appeared.
        column: usize,
    },
    /// Interpolation table construction got non-monotone or empty abscissae.
    InvalidTable(String),
    /// Root finding could not bracket or converge.
    RootNotBracketed {
        /// Lower bracket endpoint.
        lo: f64,
        /// Upper bracket endpoint.
        hi: f64,
    },
    /// A root-finding objective returned NaN or ±∞. Before this variant
    /// existed, a NaN function value silently steered bisection (every
    /// sign comparison against NaN is false) and the search "converged"
    /// to garbage; now the poisoned evaluation is reported instead.
    NonFiniteEvaluation {
        /// Abscissa at which the objective was evaluated.
        x: f64,
        /// The non-finite value it returned (NaN or ±∞).
        fx: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::Dimension { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            NumericsError::SingularMatrix { column } => {
                write!(f, "matrix is numerically singular at column {column}")
            }
            NumericsError::InvalidTable(msg) => write!(f, "invalid interpolation table: {msg}"),
            NumericsError::RootNotBracketed { lo, hi } => {
                write!(f, "root not bracketed on [{lo}, {hi}]")
            }
            NumericsError::NonFiniteEvaluation { x, fx } => {
                write!(f, "objective returned non-finite value {fx} at x = {x}")
            }
        }
    }
}

impl Error for NumericsError {}
