//! Streaming statistics for Monte-Carlo estimates.
//!
//! Every Monte-Carlo loop in the workspace (device-level traversals,
//! circuit-level variation sampling, array-level strike simulation)
//! accumulates its observables through [`RunningStats`], which implements
//! Welford's numerically stable single-pass mean/variance update and
//! supports merging partial accumulators from worker threads.

/// Single-pass mean/variance accumulator (Welford), mergeable across threads.
///
/// # Examples
///
/// ```
/// use finrad_numerics::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds one observation only if it is finite, returning whether it was
    /// accepted. This is the NaN/Inf quarantine boundary for Monte-Carlo
    /// accumulators: a single poisoned sample pushed through [`push`]
    /// would corrupt the mean and variance irreversibly, so callers that
    /// cannot rule out poisoned inputs must use this and count rejections.
    ///
    /// [`push`]: RunningStats::push
    ///
    /// # Examples
    ///
    /// ```
    /// use finrad_numerics::stats::RunningStats;
    ///
    /// let mut s = RunningStats::new();
    /// assert!(s.push_finite(1.0));
    /// assert!(!s.push_finite(f64::NAN));
    /// assert!(!s.push_finite(f64::INFINITY));
    /// assert_eq!(s.count(), 1);
    /// assert_eq!(s.mean(), 1.0);
    /// ```
    pub fn push_finite(&mut self, x: f64) -> bool {
        if x.is_finite() {
            self.push(x);
            true
        } else {
            false
        }
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Normal-theory 95 % confidence half-width of the mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.959_963_985 * self.standard_error()
    }

    /// Smallest observation, `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Counter for Bernoulli-style Monte-Carlo outcomes (hit / no-hit), with a
/// Wilson score interval for the estimated proportion.
///
/// # Examples
///
/// ```
/// use finrad_numerics::stats::BernoulliCounter;
///
/// let mut c = BernoulliCounter::new();
/// for i in 0..100 {
///     c.record(i % 4 == 0);
/// }
/// assert_eq!(c.trials(), 100);
/// assert!((c.proportion() - 0.25).abs() < 1e-12);
/// let (lo, hi) = c.wilson_ci95();
/// assert!(lo < 0.25 && 0.25 < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BernoulliCounter {
    successes: u64,
    trials: u64,
}

impl BernoulliCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &BernoulliCounter) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Estimated success proportion; 0 when no trials were recorded.
    pub fn proportion(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson 95 % score interval for the proportion.
    pub fn wilson_ci95(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let z = 1.959_963_985f64;
        let n = self.trials as f64;
        let p = self.proportion();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_benign() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 * 0.11).collect();
        let s: RunningStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-8);
        assert_eq!(s.count(), 500);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin()).collect();
        let all: RunningStats = data.iter().copied().collect();
        let a: RunningStats = data[..77].iter().copied().collect();
        let mut b: RunningStats = data[77..].iter().copied().collect();
        b.merge(&a);
        assert_eq!(b.count(), all.count());
        assert!((b.mean() - all.mean()).abs() < 1e-12);
        assert!((b.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(b.min(), all.min());
        assert_eq!(b.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut a: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small: RunningStats = (0..10).map(|i| (i % 3) as f64).collect();
        let large: RunningStats = (0..10000).map(|i| (i % 3) as f64).collect();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn bernoulli_basics() {
        let mut c = BernoulliCounter::new();
        assert_eq!(c.wilson_ci95(), (0.0, 1.0));
        for _ in 0..30 {
            c.record(true);
        }
        for _ in 0..70 {
            c.record(false);
        }
        assert!((c.proportion() - 0.3).abs() < 1e-12);
        let (lo, hi) = c.wilson_ci95();
        assert!(lo > 0.2 && hi < 0.42);
        assert!(lo < 0.3 && hi > 0.3);
    }

    #[test]
    fn bernoulli_merge() {
        let mut a = BernoulliCounter::new();
        let mut b = BernoulliCounter::new();
        a.record(true);
        b.record(false);
        b.record(true);
        a.merge(&b);
        assert_eq!(a.trials(), 3);
        assert_eq!(a.successes(), 2);
    }

    #[test]
    fn wilson_stays_in_unit_interval_at_extremes() {
        let mut all = BernoulliCounter::new();
        for _ in 0..50 {
            all.record(true);
        }
        let (lo, hi) = all.wilson_ci95();
        assert!(lo >= 0.0 && hi <= 1.0 && lo < hi);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256pp};

    #[test]
    fn merge_is_order_independent() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x57A7);
        for _ in 0..200 {
            let n = 1 + (rng.next_u64() % 99) as usize;
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0e3..1.0e3)).collect();
            let split = (rng.next_u64() as usize % 100).min(xs.len());

            let mut ab: RunningStats = xs[..split].iter().copied().collect();
            let b: RunningStats = xs[split..].iter().copied().collect();
            ab.merge(&b);

            let mut ba = b;
            let a: RunningStats = xs[..split].iter().copied().collect();
            ba.merge(&a);

            assert_eq!(ab.count(), ba.count());
            assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            assert!((ab.sample_variance() - ba.sample_variance()).abs() < 1e-6);
        }
    }

    #[test]
    fn variance_nonnegative() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x7A2);
        for _ in 0..200 {
            let n = (rng.next_u64() % 200) as usize;
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0e6..1.0e6)).collect();
            let s: RunningStats = xs.iter().copied().collect();
            assert!(s.sample_variance() >= 0.0);
        }
    }

    #[test]
    fn proportion_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xBE2);
        for _ in 0..200 {
            let hits = rng.next_u64() % 200;
            let misses = rng.next_u64() % 200;
            let mut c = BernoulliCounter::new();
            for _ in 0..hits {
                c.record(true);
            }
            for _ in 0..misses {
                c.record(false);
            }
            let p = c.proportion();
            assert!((0.0..=1.0).contains(&p));
            let (lo, hi) = c.wilson_ci95();
            assert!(lo <= hi);
            assert!(lo >= 0.0 && hi <= 1.0);
        }
    }
}
