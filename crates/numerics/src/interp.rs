//! Piecewise-linear interpolation tables.
//!
//! These back the paper's look-up tables: electron–hole pair counts vs
//! particle energy (built once from the device-level Monte Carlo) and
//! probability-of-failure vs pulse charge (built once from the circuit-level
//! characterization). Two flavours are provided:
//!
//! * [`LinearTable`] — linear in both axes; clamped extrapolation.
//! * [`LogLogTable`] — linear in log–log space, the natural choice for
//!   stopping powers and flux spectra that span many decades.

use crate::NumericsError;

fn validate(xs: &[f64], ys: &[f64]) -> Result<(), NumericsError> {
    if xs.len() < 2 {
        return Err(NumericsError::InvalidTable(format!(
            "need at least 2 points, got {}",
            xs.len()
        )));
    }
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidTable(format!(
            "abscissa/ordinate length mismatch: {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(NumericsError::InvalidTable(
            "abscissae must be strictly increasing".to_owned(),
        ));
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(NumericsError::InvalidTable(
            "all table entries must be finite".to_owned(),
        ));
    }
    Ok(())
}

/// Index of the segment containing `x` (clamped to the end segments).
fn segment(xs: &[f64], x: f64) -> usize {
    match xs.binary_search_by(|v| v.total_cmp(&x)) {
        Ok(i) => i.min(xs.len() - 2),
        Err(0) => 0,
        Err(i) => (i - 1).min(xs.len() - 2),
    }
}

/// A piecewise-linear interpolation table with clamped extrapolation.
///
/// # Examples
///
/// ```
/// use finrad_numerics::interp::LinearTable;
///
/// let t = LinearTable::new(vec![0.0, 2.0], vec![1.0, 5.0])?;
/// assert_eq!(t.eval(1.0), 3.0);
/// assert_eq!(t.eval(-1.0), 1.0); // clamped below
/// assert_eq!(t.eval(9.0), 5.0);  // clamped above
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearTable {
    /// Builds a table from strictly increasing abscissae.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidTable`] when there are fewer than two
    /// points, the lengths differ, abscissae are not strictly increasing, or
    /// any entry is non-finite.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericsError> {
        validate(&xs, &ys)?;
        Ok(Self { xs, ys })
    }

    /// Builds a table whose invariants the *caller* guarantees — compile-
    /// time-constant or otherwise statically well-formed data. Violations
    /// are caught by `debug_assert!` (and therefore by the test suite);
    /// release builds construct the table as-is. This is the constructor
    /// for static reference tables in library code, where an `expect` on
    /// [`Self::new`] would trade a provably-absent error for a panic path.
    pub fn from_static(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        debug_assert!(
            validate(&xs, &ys).is_ok(),
            "static linear table violates its invariants"
        );
        Self { xs, ys }
    }

    /// Interpolated value at `x`; clamps outside the covered range.
    pub fn eval(&self, x: f64) -> f64 {
        // The constructor guarantees at least two points.
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let i = segment(&self.xs, x);
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + t * (self.ys[i + 1] - self.ys[i])
    }

    /// The covered abscissa range `(min, max)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], self.xs[self.xs.len() - 1])
    }

    /// Borrowed view of the abscissae.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Borrowed view of the ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// A piecewise-linear table in log₁₀–log₁₀ space with clamped extrapolation.
///
/// Suitable for positive quantities spanning decades (stopping power, flux).
///
/// # Examples
///
/// ```
/// use finrad_numerics::interp::LogLogTable;
///
/// // y = x^2 sampled at two points is reproduced exactly in between.
/// let t = LogLogTable::new(vec![1.0, 100.0], vec![1.0, 10000.0])?;
/// assert!((t.eval(10.0) - 100.0).abs() < 1e-9);
/// # Ok::<(), finrad_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogLogTable {
    log_xs: Vec<f64>,
    log_ys: Vec<f64>,
}

impl LogLogTable {
    /// Builds a log–log table. All `xs` and `ys` must be strictly positive.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidTable`] under the same conditions as
    /// [`LinearTable::new`], and additionally when any value is ≤ 0.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericsError> {
        validate(&xs, &ys)?;
        if xs.iter().chain(ys.iter()).any(|&v| v <= 0.0) {
            return Err(NumericsError::InvalidTable(
                "log-log tables require strictly positive values".to_owned(),
            ));
        }
        Ok(Self {
            log_xs: xs.iter().map(|v| v.log10()).collect(),
            log_ys: ys.iter().map(|v| v.log10()).collect(),
        })
    }

    /// Builds a log–log table from statically well-formed data (see
    /// [`LinearTable::from_static`]). Invariants — including strict
    /// positivity — are checked with `debug_assert!` only.
    pub fn from_static(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        debug_assert!(
            validate(&xs, &ys).is_ok() && xs.iter().chain(ys.iter()).all(|&v| v > 0.0),
            "static log-log table violates its invariants"
        );
        Self {
            log_xs: xs.iter().map(|v| v.log10()).collect(),
            log_ys: ys.iter().map(|v| v.log10()).collect(),
        }
    }

    /// Interpolated value at `x > 0`; clamps outside the covered range.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not strictly positive.
    pub fn eval(&self, x: f64) -> f64 {
        assert!(x > 0.0, "log-log evaluation requires x > 0, got {x}");
        // The constructor guarantees at least two points.
        let n = self.log_xs.len();
        let lx = x.log10();
        if lx <= self.log_xs[0] {
            return 10f64.powf(self.log_ys[0]);
        }
        if lx >= self.log_xs[n - 1] {
            return 10f64.powf(self.log_ys[n - 1]);
        }
        let i = segment(&self.log_xs, lx);
        let t = (lx - self.log_xs[i]) / (self.log_xs[i + 1] - self.log_xs[i]);
        10f64.powf(self.log_ys[i] + t * (self.log_ys[i + 1] - self.log_ys[i]))
    }

    /// The covered abscissa range `(min, max)` in linear space.
    pub fn domain(&self) -> (f64, f64) {
        (
            10f64.powf(self.log_xs[0]),
            10f64.powf(self.log_xs[self.log_xs.len() - 1]),
        )
    }
}

/// Generates `n` logarithmically spaced points over `[lo, hi]` (inclusive).
///
/// # Panics
///
/// Panics if `lo <= 0`, `hi <= lo` or `n < 2`.
///
/// # Examples
///
/// ```
/// use finrad_numerics::interp::log_space;
///
/// let pts = log_space(0.1, 100.0, 4);
/// assert_eq!(pts.len(), 4);
/// assert!((pts[0] - 0.1).abs() < 1e-12);
/// assert!((pts[3] - 100.0).abs() < 1e-9);
/// ```
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2, "invalid log_space arguments");
    let (llo, lhi) = (lo.log10(), hi.log10());
    (0..n)
        .map(|i| 10f64.powf(llo + (lhi - llo) * i as f64 / (n - 1) as f64))
        .collect()
}

/// Generates `n` linearly spaced points over `[lo, hi]` (inclusive).
///
/// # Panics
///
/// Panics if `hi <= lo` or `n < 2`.
pub fn lin_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(hi > lo && n >= 2, "invalid lin_space arguments");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_exact_at_knots() {
        let t = LinearTable::new(vec![0.0, 1.0, 3.0], vec![2.0, 4.0, 0.0]).unwrap();
        assert_eq!(t.eval(0.0), 2.0);
        assert_eq!(t.eval(1.0), 4.0);
        assert_eq!(t.eval(3.0), 0.0);
    }

    #[test]
    fn linear_midpoints() {
        let t = LinearTable::new(vec![0.0, 1.0, 3.0], vec![2.0, 4.0, 0.0]).unwrap();
        assert!((t.eval(0.5) - 3.0).abs() < 1e-14);
        assert!((t.eval(2.0) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn linear_clamps() {
        let t = LinearTable::new(vec![1.0, 2.0], vec![10.0, 20.0]).unwrap();
        assert_eq!(t.eval(0.0), 10.0);
        assert_eq!(t.eval(3.0), 20.0);
        assert_eq!(t.domain(), (1.0, 2.0));
    }

    #[test]
    fn rejects_bad_tables() {
        assert!(LinearTable::new(vec![1.0], vec![1.0]).is_err());
        assert!(LinearTable::new(vec![1.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(LinearTable::new(vec![2.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(LinearTable::new(vec![1.0, 2.0], vec![1.0]).is_err());
        assert!(LinearTable::new(vec![1.0, 2.0], vec![f64::NAN, 1.0]).is_err());
        assert!(LogLogTable::new(vec![0.0, 1.0], vec![1.0, 1.0]).is_err());
        assert!(LogLogTable::new(vec![1.0, 2.0], vec![-1.0, 1.0]).is_err());
    }

    #[test]
    fn monotone_grid_invariant_enforced_by_constructor() {
        // Energy grids feeding the transport LUTs must be strictly
        // increasing; the checked constructor is the only way to build a
        // table, so a non-monotone grid can never reach `eval`.
        let err = LinearTable::new(vec![1.0, 3.0, 2.0], vec![0.0, 0.0, 0.0]).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidTable(_)));
        let err = LogLogTable::new(vec![1.0, 10.0, 10.0], vec![1.0, 1.0, 1.0]).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidTable(_)));
    }

    #[test]
    fn loglog_power_law_exact() {
        // y = 3 x^{-1.7} is linear in log-log; interpolation must be exact.
        let xs: Vec<f64> = vec![0.1, 1.0, 10.0, 100.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(-1.7)).collect();
        let t = LogLogTable::new(xs, ys).unwrap();
        for x in [0.3f64, 2.5, 47.0] {
            let expect = 3.0 * x.powf(-1.7);
            assert!((t.eval(x) - expect).abs() / expect < 1e-12);
        }
    }

    #[test]
    fn loglog_clamps() {
        let t = LogLogTable::new(vec![1.0, 10.0], vec![5.0, 50.0]).unwrap();
        assert!((t.eval(0.1) - 5.0).abs() < 1e-12);
        assert!((t.eval(1000.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn loglog_rejects_nonpositive_eval() {
        let t = LogLogTable::new(vec![1.0, 10.0], vec![5.0, 50.0]).unwrap();
        let _ = t.eval(0.0);
    }

    #[test]
    fn spacing_helpers() {
        let ls = lin_space(0.7, 1.1, 5);
        assert_eq!(ls.len(), 5);
        assert!((ls[2] - 0.9).abs() < 1e-12);
        let gs = log_space(1.0, 1000.0, 4);
        assert!((gs[1] - 10.0).abs() < 1e-9);
        assert!((gs[2] - 100.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256pp};

    fn sorted_unique(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(|a, b| a.total_cmp(b));
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        v
    }

    #[test]
    fn eval_within_ordinate_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x1F7E);
        for round in 0..200u64 {
            let n = 2 + (rng.next_u64() % 18) as usize;
            let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let xs = sorted_unique(raw);
            if xs.len() < 2 {
                continue;
            }
            let ys: Vec<f64> = xs
                .iter()
                .enumerate()
                .map(|(i, _)| ((round as f64 + i as f64) * 0.73).sin() * 10.0)
                .collect();
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let t = LinearTable::new(xs, ys).unwrap();
            let q = rng.gen_range(-150.0..150.0);
            let v = t.eval(q);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn monotone_table_gives_monotone_eval() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x304A);
        for _ in 0..200 {
            let n = 3 + (rng.next_u64() % 12) as usize;
            let a = rng.gen_range(0.1..10.0);
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let ys: Vec<f64> = (0..n).map(|i| a * i as f64).collect();
            let t = LinearTable::new(xs, ys).unwrap();
            let x1 = rng.gen_range(0.0..50.0);
            let x2 = rng.gen_range(0.0..50.0);
            if x1 <= x2 {
                assert!(t.eval(x1) <= t.eval(x2) + 1e-9);
            } else {
                assert!(t.eval(x2) <= t.eval(x1) + 1e-9);
            }
        }
    }

    #[test]
    fn loglog_positive_everywhere() {
        let t =
            LogLogTable::new(vec![1.0e-2, 1.0, 1.0e2, 1.0e4], vec![7.0, 3.0, 11.0, 0.5]).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(0x106);
        for _ in 0..500 {
            // Log-uniform query spanning the table and beyond.
            let x = 10.0f64.powf(rng.gen_range(-3.0..6.0));
            assert!(t.eval(x) > 0.0);
        }
    }

    #[test]
    fn log_space_is_increasing() {
        for n in 2usize..50 {
            let pts = log_space(0.1, 1.0e3, n);
            assert!(pts.windows(2).all(|w| w[1] > w[0]));
        }
    }
}
