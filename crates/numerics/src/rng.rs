//! Seeded-only pseudo-random number generation for Monte-Carlo kernels.
//!
//! The workspace policy (see `docs/static-analysis.md`, lint
//! `rng-determinism`) is that **every** stochastic computation is driven by
//! an explicitly seeded generator so that two runs with the same seed are
//! bit-identical. This module therefore deliberately offers *no*
//! entropy-based constructor — there is no `thread_rng()`, no
//! `from_entropy()`, and no `SystemTime` fallback. Callers must thread a
//! seed (or a `&mut impl Rng`) through their public API.
//!
//! Two small, well-studied generators are provided:
//!
//! * [`SplitMix64`] — a 64-bit mixing generator, used to expand a single
//!   `u64` seed into the 256-bit state of the main generator and to derive
//!   decorrelated per-worker streams.
//! * [`Xoshiro256pp`] — xoshiro256++ 1.0 (Blackman & Vigna), the default
//!   generator for all Monte-Carlo sampling in the workspace.
//!
//! # Examples
//!
//! ```
//! use finrad_numerics::rng::{Rng, Xoshiro256pp};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let u = rng.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! let x = rng.gen_range(-1.0..=1.0);
//! assert!((-1.0..=1.0).contains(&x));
//!
//! // Same seed, same stream — bit identical.
//! let a: Vec<u64> = (0..4).map(|_| Xoshiro256pp::seed_from_u64(7).next_u64()).collect();
//! let b: Vec<u64> = (0..4).map(|_| Xoshiro256pp::seed_from_u64(7).next_u64()).collect();
//! assert_eq!(a, b);
//! ```

use std::ops::{Range, RangeInclusive};

/// A deterministic, explicitly seeded pseudo-random number generator.
///
/// Only [`Self::next_u64`] is required; the floating-point helpers are
/// derived from it, so every implementor produces identical `f64` streams
/// for identical `u64` streams.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits of
    /// [`Self::next_u64`] (the standard 2⁻⁵³ ladder).
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits; (x >> 11) in [0, 2^53).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` drawn from `range`.
    ///
    /// Accepts `lo..hi` (half-open) and `lo..=hi` (closed); see
    /// [`UniformRange`].
    #[inline]
    fn gen_range<B: UniformRange>(&mut self, range: B) -> f64 {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range of `f64` that a uniform sample can be drawn from.
pub trait UniformRange {
    /// Draws one uniform sample from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64;
}

impl UniformRange for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(
            self.start < self.end,
            "gen_range requires start < end, got {}..{}",
            self.start,
            self.end
        );
        let u = rng.next_f64();
        // u < 1 keeps the result strictly below `end` for finite spans.
        self.start + (self.end - self.start) * u
    }
}

impl UniformRange for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        debug_assert!(lo <= hi, "gen_range requires lo <= hi, got {lo}..={hi}");
        // Map the 53-bit ladder onto [lo, hi] inclusively by scaling with
        // the closed-interval divisor.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

/// SplitMix64 (Steele, Lea & Flood) — a tiny 64-bit generator whose main
/// job here is seed expansion: it decorrelates consecutive integer seeds so
/// that `seed`, `seed + 1`, … give unrelated [`Xoshiro256pp`] streams.
///
/// # Examples
///
/// ```
/// use finrad_numerics::rng::{Rng, SplitMix64};
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(2);
/// assert_ne!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// valid.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019) — the workspace's default
/// Monte-Carlo generator: 256-bit state, period 2²⁵⁶ − 1, passes BigCrush,
/// and is a few instructions per draw.
///
/// Construction is seeded-only, via [`Xoshiro256pp::seed_from_u64`] or
/// [`Xoshiro256pp::from_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full 256-bit state with
    /// [`SplitMix64`], per the xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let s = [
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
        ];
        Self::from_state(s)
    }

    /// Builds a generator from an explicit 256-bit state. An all-zero
    /// state is invalid for xoshiro and is replaced by the expansion of
    /// seed 0.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    /// Derives a decorrelated stream for worker `index`, for splitting one
    /// user-facing seed across deterministic parallel workers.
    pub fn stream(seed: u64, index: u64) -> Self {
        // Feed both words through SplitMix64 so that (seed, index) pairs
        // never collide with plain consecutive seeds.
        let mut mix = SplitMix64::new(seed);
        let base = mix.next_u64();
        Self::seed_from_u64(base ^ SplitMix64::new(index.wrapping_add(1)).next_u64())
    }

    /// Derives the stream for worker `index` under an engine-specific
    /// `salt`, so distinct Monte-Carlo engines sharing one user seed never
    /// reuse each other's streams. This is the sanctioned home for the
    /// `seed ^ index * salt` idiom — the `seed-discipline` lint rejects the
    /// same arithmetic written inline at call sites.
    pub fn salted_stream(seed: u64, index: u64, salt: u64) -> Self {
        Self::seed_from_u64(seed ^ index.wrapping_mul(salt))
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4}: reference values from the
        // public-domain xoshiro256plusplus.c implementation.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256pp::seed_from_u64(99);
        let mut b = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn salted_stream_matches_inline_derivation() {
        // Call sites migrated onto salted_stream must keep their historical
        // streams bit-for-bit; this pins the helper to the inline idiom it
        // replaced.
        let (seed, salt) = (0xDEAD_BEEF_u64, 0xD6E8_FEB8_6659_FD93_u64);
        for index in [0u64, 1, 2, 7, u64::MAX] {
            let mut a = Xoshiro256pp::salted_stream(seed, index, salt);
            let mut b = Xoshiro256pp::seed_from_u64(seed ^ index.wrapping_mul(salt));
            for _ in 0..8 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn salted_streams_decorrelate_across_indices() {
        let mut a = Xoshiro256pp::salted_stream(3, 1, 0xA076_1D64_78BD_642F);
        let mut b = Xoshiro256pp::salted_stream(3, 2, 0xA076_1D64_78BD_642F);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_is_unit_interval_and_uniformish() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..5_000 {
            let x = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn zero_state_is_rejected() {
        let mut rng = Xoshiro256pp::from_state([0; 4]);
        // Must not get stuck at zero.
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = Xoshiro256pp::stream(42, 0);
        let mut b = Xoshiro256pp::stream(42, 1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let by_ref = draw(&mut rng);
        assert!((0.0..1.0).contains(&by_ref));
        // &mut R itself implements Rng.
        let mut r2 = Xoshiro256pp::seed_from_u64(3);
        let mut borrowed = &mut r2;
        let _ = draw(&mut borrowed);
    }
}
