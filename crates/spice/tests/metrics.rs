//! Integration test for the solver's hot-path metrics: the structured-LU
//! counters and the warm-start counters. Lives in its own binary because a
//! process can install exactly one recorder, and counter assertions need
//! a process where nothing else solves circuits concurrently.

use finrad_finfet::{FinFet, Polarity, Technology};
use finrad_observe::keys;
use finrad_spice::analysis::{dc_operating_point, dc_operating_point_warm, NewtonOptions};
use finrad_spice::Circuit;

#[test]
fn structured_lu_and_warm_start_counters() {
    let recorder = finrad_observe::install_in_memory().expect("first install");
    let opts = NewtonOptions::default();
    let tech = Technology::soi_finfet_14nm();

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let a = ckt.node("a");
    let y = ckt.node("y");
    ckt.add_vsource(vdd, Circuit::GROUND, 0.8);
    ckt.add_vsource(a, Circuit::GROUND, 0.4);
    ckt.add_mosfet(y, a, Circuit::GROUND, FinFet::new(&tech, Polarity::Nmos, 1));
    ckt.add_mosfet(y, a, vdd, FinFet::new(&tech, Polarity::Pmos, 1));

    // Cold solve: first linear solve falls back to dense pivoting (which
    // picks the pivot order), every later iteration takes the structured
    // path.
    let cold = dc_operating_point(&ckt, &opts).expect("cold op");
    let snap = recorder.snapshot();
    let structured = snap.counter(keys::SPICE_LU_STRUCTURED);
    let dense = snap.counter(keys::SPICE_LU_DENSE_FALLBACKS);
    let iters = snap.counter(keys::SPICE_NEWTON_ITERATIONS);
    assert!(structured > 0, "structured path unused (dense {dense})");
    assert_eq!(
        structured + dense,
        iters,
        "every Newton iteration is exactly one linear solve"
    );

    // Warm solve from the already-solved state: one Newton iteration.
    let warm = dc_operating_point_warm(&ckt, &opts, cold.node_voltages()).expect("warm op");
    for (c, w) in cold.node_voltages().iter().zip(warm.node_voltages()) {
        assert!((c - w).abs() < 1e-6, "cold {c} vs warm {w}");
    }
    let snap = recorder.snapshot();
    assert_eq!(snap.counter(keys::SPICE_NEWTON_WARM_STARTS), 1);
    assert_eq!(
        snap.counter(keys::SPICE_NEWTON_WARM_ITERATIONS),
        1,
        "restarting from the solved state must converge on the first iterate"
    );
}
