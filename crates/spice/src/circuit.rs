//! Netlist representation.

use crate::source::SourceWaveform;
use crate::SpiceError;
use finrad_finfet::{FinFet, SmallSignalBatch};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of the node in the netlist (ground = 0).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a MOSFET instance, for post-construction parameter edits
/// (e.g. applying per-instance ΔVth in the variation Monte Carlo).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MosfetId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct Resistor {
    pub a: NodeId,
    pub b: NodeId,
    pub conductance: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Capacitor {
    pub a: NodeId,
    pub b: NodeId,
    pub farads: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct VSource {
    pub pos: NodeId,
    pub neg: NodeId,
    pub volts: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ISource {
    /// Current flows out of `from` and into `to` (i.e. the source drives
    /// conventional current from `from` through itself to `to`).
    pub from: NodeId,
    pub to: NodeId,
    pub waveform: SourceWaveform,
}

#[derive(Debug, Clone)]
pub(crate) struct MosfetInst {
    pub drain: NodeId,
    pub gate: NodeId,
    pub source: NodeId,
    pub device: FinFet,
}

/// A flat netlist of circuit elements over named nodes.
///
/// # Examples
///
/// ```
/// use finrad_spice::Circuit;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// assert_eq!(ckt.node("a"), a); // idempotent lookup
/// assert_ne!(a, Circuit::GROUND);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    names: Vec<String>,
    index: HashMap<String, NodeId>,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) capacitors: Vec<Capacitor>,
    pub(crate) vsources: Vec<VSource>,
    pub(crate) isources: Vec<ISource>,
    pub(crate) mosfets: Vec<MosfetInst>,
}

impl Circuit {
    /// The ground node, present in every circuit.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut index = HashMap::new();
        index.insert("0".to_owned(), NodeId(0));
        Self {
            names: vec!["0".to_owned()],
            index,
            ..Default::default()
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"` and `"gnd"` refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name.eq_ignore_ascii_case("gnd") {
            return Self::GROUND;
        }
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name.eq_ignore_ascii_case("gnd") {
            return Some(Self::GROUND);
        }
        self.index.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of voltage sources (each adds one MNA branch unknown).
    pub fn vsource_count(&self) -> usize {
        self.vsources.len()
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive and finite.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        self.resistors.push(Resistor {
            a,
            b,
            conductance: 1.0 / ohms,
        });
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive and finite.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) {
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be positive"
        );
        self.capacitors.push(Capacitor { a, b, farads });
    }

    /// Adds a DC voltage source forcing `v(pos) − v(neg) = volts`.
    pub fn add_vsource(&mut self, pos: NodeId, neg: NodeId, volts: f64) {
        assert!(volts.is_finite(), "source voltage must be finite");
        self.vsources.push(VSource { pos, neg, volts });
    }

    /// Re-targets every voltage source whose positive terminal is `pos`
    /// (and whose negative terminal is ground) to a new value — used to
    /// switch a control node (e.g. an SRAM word line) between analyses.
    ///
    /// # Panics
    ///
    /// Panics if no such source exists or `volts` is not finite.
    pub fn set_vsource_voltage(&mut self, pos: NodeId, volts: f64) {
        assert!(volts.is_finite(), "source voltage must be finite");
        let mut found = false;
        for v in &mut self.vsources {
            if v.pos == pos && v.neg == Self::GROUND {
                v.volts = volts;
                found = true;
            }
        }
        assert!(found, "no ground-referenced source drives node {pos}");
    }

    /// Adds a current source driving conventional current from `from`
    /// through the source into `to` (so `to` is pulled *up* by positive
    /// current, `from` is pulled *down*).
    pub fn add_isource(&mut self, from: NodeId, to: NodeId, waveform: SourceWaveform) {
        self.isources.push(ISource { from, to, waveform });
    }

    /// Adds a FinFET. Gate draws no DC current; its capacitances (gate and
    /// junction) are automatically stamped as linear capacitors so the node
    /// dynamics are physical.
    ///
    /// Returns an id usable with [`Circuit::mosfet_mut`].
    pub fn add_mosfet(
        &mut self,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        device: FinFet,
    ) -> MosfetId {
        // Gate capacitance split between gate-source and gate-drain;
        // junction capacitance from drain and source to ground.
        let cg = device.gate_cap_f();
        let cj = device.junction_cap_f();
        if gate != drain {
            self.add_capacitor(gate, drain, 0.5 * cg);
        }
        if gate != source {
            self.add_capacitor(gate, source, 0.5 * cg);
        }
        if drain != Self::GROUND {
            self.add_capacitor(drain, Self::GROUND, cj);
        }
        if source != Self::GROUND {
            self.add_capacitor(source, Self::GROUND, cj);
        }
        let id = MosfetId(self.mosfets.len());
        self.mosfets.push(MosfetInst {
            drain,
            gate,
            source,
            device,
        });
        id
    }

    /// Mutable access to a MOSFET's device model (for ΔVth injection).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn mosfet_mut(&mut self, id: MosfetId) -> &mut FinFet {
        &mut self.mosfets[id.0].device
    }

    /// Shared access to a MOSFET's device model.
    pub fn mosfet(&self, id: MosfetId) -> &FinFet {
        &self.mosfets[id.0].device
    }

    /// Number of MOSFET instances; ids `MosfetId` handed out by
    /// [`Circuit::add_mosfet`] index them densely in insertion order.
    pub fn mosfet_count(&self) -> usize {
        self.mosfets.len()
    }

    /// Ids of all MOSFET instances in insertion order.
    pub fn mosfet_ids(&self) -> impl Iterator<Item = MosfetId> + '_ {
        (0..self.mosfets.len()).map(MosfetId)
    }

    /// Batched stamp-side evaluation of one MOSFET: reads the device's
    /// terminal voltages from the full node vector `v` and evaluates the
    /// model across `delta_vths` threshold-shift lanes in one SoA call
    /// (lane `k` matches `with_delta_vth(delta_vths[k]) + evaluate` bit
    /// for bit). This is the per-device kernel behind the batched
    /// Monte-Carlo warm seeding in `finrad-spice::analysis`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit or `v` is shorter
    /// than the node count.
    pub fn evaluate_mosfet_batch(
        &self,
        id: MosfetId,
        v: &[f64],
        delta_vths: &[f64],
        out: &mut SmallSignalBatch,
    ) {
        let m = &self.mosfets[id.0];
        m.device.evaluate_batch(
            v[m.gate.index()],
            v[m.drain.index()],
            v[m.source.index()],
            delta_vths,
            out,
        );
    }

    /// Validates basic netlist sanity: at least one node beyond ground and
    /// no dangling voltage sources shorting ground to itself.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] on a degenerate netlist.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if self.names.len() < 2 {
            return Err(SpiceError::InvalidElement(
                "circuit has no nodes besides ground".to_owned(),
            ));
        }
        for v in &self.vsources {
            if v.pos == v.neg {
                return Err(SpiceError::InvalidElement(
                    "voltage source with both terminals on the same node".to_owned(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finrad_finfet::{FinFet, Polarity, Technology};

    #[test]
    fn node_management() {
        let mut c = Circuit::new();
        let a = c.node("vdd");
        let b = c.node("q");
        assert_ne!(a, b);
        assert_eq!(c.node("vdd"), a);
        assert_eq!(c.node("GND"), Circuit::GROUND);
        assert_eq!(c.find_node("q"), Some(b));
        assert_eq!(c.find_node("missing"), None);
        assert_eq!(c.node_name(b), "q");
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn validate_catches_degenerate() {
        let c = Circuit::new();
        assert!(c.validate().is_err());

        let mut c2 = Circuit::new();
        let a = c2.node("a");
        c2.add_vsource(a, a, 1.0);
        assert!(c2.validate().is_err());
    }

    #[test]
    fn mosfet_adds_parasitic_caps() {
        let mut c = Circuit::new();
        let (d, g, s) = (c.node("d"), c.node("g"), c.node("s"));
        let dev = FinFet::new(&Technology::soi_finfet_14nm(), Polarity::Nmos, 1);
        let before = c.capacitors.len();
        let id = c.add_mosfet(d, g, s, dev);
        assert_eq!(c.capacitors.len(), before + 4);
        assert_eq!(c.mosfet(id).n_fins(), 1);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn rejects_zero_resistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor(a, Circuit::GROUND, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn rejects_negative_capacitance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_capacitor(a, Circuit::GROUND, -1.0e-15);
    }
}
