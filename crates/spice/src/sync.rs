//! Poison-tolerant synchronization helpers.
//!
//! The campaign daemon and the characterization cache both follow the same
//! policy for lock poisoning: recover the inner data instead of propagating
//! the panic. All job code runs under `catch_unwind` *off*-lock, so a thread
//! panicking while holding one of these locks cannot happen in the first
//! place — but if it ever does, a poisoned `Mutex` must not wedge the daemon
//! (a wedged daemon loses the partial checkpoints a clean shutdown would
//! flush). Rather than repeat `lock().unwrap_or_else(|p| p.into_inner())`
//! at every call site, this module is the single, documented home of that
//! idiom.
//!
//! These helpers are also the **sanctioned span** for the `lock-order-audit`
//! and `guard-lifetime-audit` lint families in `cargo xtask lint`: the raw
//! poison-recovery token pattern anywhere else in the workspace is flagged,
//! so new code is pushed toward this module instead of re-inlining it.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard from a poisoned lock.
///
/// Use this instead of `mutex.lock().unwrap()` (which would panic and
/// cascade) or an inline `unwrap_or_else(|p| p.into_inner())` (which the
/// lint gate flags outside this module).
pub fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}

/// Blocks on `cv`, consuming and re-returning the guard, recovering from
/// poisoning exactly like [`lock_recovering`].
pub fn wait_recovering<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|p| p.into_inner())
}

/// Bounded [`wait_recovering`]: blocks on `cv` for at most `dur`.
pub fn wait_timeout_recovering<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    fn poisoned(value: u32) -> Arc<Mutex<u32>> {
        let m = Arc::new(Mutex::new(value));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        m
    }

    #[test]
    fn lock_recovering_survives_poison() {
        let m = poisoned(7);
        assert_eq!(*lock_recovering(&m), 7);
        // Still usable afterwards.
        *lock_recovering(&m) += 1;
        assert_eq!(*lock_recovering(&m), 8);
    }

    #[test]
    fn wait_timeout_recovering_times_out_and_returns_guard() {
        let m = Mutex::new(1u32);
        let cv = Condvar::new();
        let g = lock_recovering(&m);
        let (g, timeout) = wait_timeout_recovering(&cv, g, Duration::from_millis(1));
        assert!(timeout.timed_out());
        assert_eq!(*g, 1);
    }

    #[test]
    fn wait_recovering_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *lock_recovering(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = lock_recovering(m);
        while !*done {
            done = wait_recovering(cv, done);
        }
        waker.join().unwrap();
    }
}
