//! Deterministic fault-injection hooks (compiled only with the
//! `fault-injection` feature).
//!
//! The robustness test-suite needs to force solver failures at precise,
//! reproducible points. The injector is a process-global countdown armed
//! by the test: after letting `skip` Newton solves through it forces the
//! next `count` solves to fail with [`SpiceError::NoConvergence`] before
//! disarming itself. Default builds do not compile this module, so the
//! production solver carries no hook points.
//!
//! The counters are process-global: tests that arm the injector must
//! serialize themselves (e.g. behind a shared mutex) so concurrently
//! running tests do not consume each other's injected failures.
//!
//! [`SpiceError::NoConvergence`]: crate::SpiceError::NoConvergence

use std::sync::atomic::{AtomicU64, Ordering};

static SKIP: AtomicU64 = AtomicU64::new(0);
static REMAINING: AtomicU64 = AtomicU64::new(0);
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// Arms the injector: the next `skip` Newton solves run normally, then the
/// following `count` solves fail with an injected
/// [`NoConvergence`](crate::SpiceError::NoConvergence).
pub fn arm_nonconvergence(skip: u64, count: u64) {
    SKIP.store(skip, Ordering::SeqCst);
    REMAINING.store(count, Ordering::SeqCst);
}

/// Disarms the injector (idempotent).
pub fn disarm() {
    SKIP.store(0, Ordering::SeqCst);
    REMAINING.store(0, Ordering::SeqCst);
}

/// Total failures injected since process start (monotonic; survives
/// re-arming).
pub fn injected_count() -> u64 {
    INJECTED.load(Ordering::SeqCst)
}

/// Hook called at the top of every Newton solve; `true` means this solve
/// must fail.
pub(crate) fn take_nonconvergence() -> bool {
    if REMAINING.load(Ordering::SeqCst) == 0 {
        return false;
    }
    // Consume a skip if any remain; only when the skip budget is exhausted
    // does the solve draw from the failure budget.
    if SKIP
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
        .is_ok()
    {
        return false;
    }
    if REMAINING
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
        .is_ok()
    {
        INJECTED.fetch_add(1, Ordering::SeqCst);
        true
    } else {
        false
    }
}
