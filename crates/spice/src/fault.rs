//! Deterministic fault-injection hooks (compiled only with the
//! `fault-injection` feature).
//!
//! The robustness test-suite needs to force solver failures at precise,
//! reproducible points. The injector is a process-global countdown armed
//! by the test: after letting `skip` Newton solves through it forces the
//! next `count` solves to fail with [`SpiceError::NoConvergence`] before
//! disarming itself. Default builds do not compile this module, so the
//! production solver carries no hook points.
//!
//! The counters are process-global: tests that arm the injector must
//! serialize themselves (e.g. behind a shared mutex) so concurrently
//! running tests do not consume each other's injected failures.
//!
//! [`SpiceError::NoConvergence`]: crate::SpiceError::NoConvergence

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static SKIP: AtomicU64 = AtomicU64::new(0);
static REMAINING: AtomicU64 = AtomicU64::new(0);
static INJECTED: AtomicU64 = AtomicU64::new(0);

static STALL_SKIP: AtomicU64 = AtomicU64::new(0);
static STALL_REMAINING: AtomicU64 = AtomicU64::new(0);
static STALL_MILLIS: AtomicU64 = AtomicU64::new(0);

/// Arms the injector: the next `skip` Newton solves run normally, then the
/// following `count` solves fail with an injected
/// [`NoConvergence`](crate::SpiceError::NoConvergence).
pub fn arm_nonconvergence(skip: u64, count: u64) {
    SKIP.store(skip, Ordering::SeqCst);
    REMAINING.store(count, Ordering::SeqCst);
}

/// Arms the artificial solver stall: the next `skip` Newton solves run
/// normally, then the following `count` solves sleep for `stall` before
/// iterating. The stall models a wedged/slow solve so cancellation
/// deadlines ([`crate::cancel`]) can be exercised deterministically — a
/// stalled solve wakes up, polls its thread's token, and aborts with
/// [`Cancelled`](crate::SpiceError::Cancelled) once the deadline passed.
pub fn arm_stall(skip: u64, count: u64, stall: Duration) {
    STALL_MILLIS.store(stall.as_millis() as u64, Ordering::SeqCst);
    STALL_SKIP.store(skip, Ordering::SeqCst);
    STALL_REMAINING.store(count, Ordering::SeqCst);
}

/// Disarms the injector (idempotent; clears both the non-convergence and
/// the stall hooks).
pub fn disarm() {
    SKIP.store(0, Ordering::SeqCst);
    REMAINING.store(0, Ordering::SeqCst);
    STALL_SKIP.store(0, Ordering::SeqCst);
    STALL_REMAINING.store(0, Ordering::SeqCst);
    STALL_MILLIS.store(0, Ordering::SeqCst);
}

/// Total failures injected since process start (monotonic; survives
/// re-arming).
pub fn injected_count() -> u64 {
    INJECTED.load(Ordering::SeqCst)
}

/// Hook called at the top of every Newton solve; `true` means this solve
/// must fail.
pub(crate) fn take_nonconvergence() -> bool {
    if REMAINING.load(Ordering::SeqCst) == 0 {
        return false;
    }
    // Consume a skip if any remain; only when the skip budget is exhausted
    // does the solve draw from the failure budget.
    if SKIP
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
        .is_ok()
    {
        return false;
    }
    if REMAINING
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
        .is_ok()
    {
        INJECTED.fetch_add(1, Ordering::SeqCst);
        true
    } else {
        false
    }
}

/// Hook called at the top of every Newton solve; `Some(d)` means this
/// solve must sleep for `d` before proceeding (the armed stall).
pub(crate) fn take_stall() -> Option<Duration> {
    if STALL_REMAINING.load(Ordering::SeqCst) == 0 {
        return None;
    }
    if STALL_SKIP
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
        .is_ok()
    {
        return None;
    }
    STALL_REMAINING
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
        .ok()
        .map(|_| Duration::from_millis(STALL_MILLIS.load(Ordering::SeqCst)))
}
