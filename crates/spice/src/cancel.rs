//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheap, cloneable flag (optionally with a
//! wall-clock deadline) that a supervisor hands to a worker thread. The
//! worker registers it for its own thread with [`install_scoped`]; while
//! the guard is alive every Newton solve, recovery-ladder rung and
//! transient step on that thread polls the token and aborts with
//! [`SpiceError::Cancelled`] instead of burning iterations on an answer
//! nobody will read. Cancellation is *cooperative*: nothing is interrupted
//! mid-factorization, the solver simply refuses to start the next solve.
//!
//! The registry is keyed by [`std::thread::ThreadId`] behind a mutex, with
//! an atomic active-count fast path so the uncancellable common case (no
//! token installed anywhere in the process) costs a single atomic load per
//! solve and never touches the lock.
//!
//! [`SpiceError::Cancelled`]: crate::SpiceError::Cancelled

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation flag with an optional wall-clock deadline.
///
/// All clones share one underlying flag: cancelling any clone cancels them
/// all. A token whose deadline has passed reports cancelled without anyone
/// calling [`CancelToken::cancel`].
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Cancels the token (idempotent; observed by all clones).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token is cancelled, either explicitly or by deadline.
    pub fn is_cancelled(&self) -> bool {
        self.reason().is_some()
    }

    /// Why the token is cancelled, if it is: `"cancelled"` for an explicit
    /// [`CancelToken::cancel`], `"deadline exceeded"` when the wall-clock
    /// deadline has passed.
    pub fn reason(&self) -> Option<&'static str> {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return Some("cancelled");
        }
        if self.inner.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some("deadline exceeded");
        }
        None
    }
}

/// Count of live per-thread registrations; the solver's fast path.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<ThreadId, CancelToken>> {
    static REGISTRY: OnceLock<Mutex<HashMap<ThreadId, CancelToken>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<ThreadId, CancelToken>> {
    // A panicking worker (caught upstream by its supervisor) must not
    // disable cancellation for every other thread.
    crate::sync::lock_recovering(registry())
}

/// Registers `token` as the cancellation token of the *current thread* for
/// the lifetime of the returned guard. Solves executed on this thread poll
/// it; dropping the guard (or replacing it with a nested install) detaches
/// the token.
pub fn install_scoped(token: &CancelToken) -> CancelScope {
    let id = std::thread::current().id();
    let previous = lock_registry().insert(id, token.clone());
    if previous.is_none() {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
    CancelScope { id, previous }
}

/// Guard returned by [`install_scoped`]; restores the thread's previous
/// token (or none) on drop.
#[derive(Debug)]
pub struct CancelScope {
    id: ThreadId,
    previous: Option<CancelToken>,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        let mut map = lock_registry();
        match self.previous.take() {
            Some(prev) => {
                map.insert(self.id, prev);
            }
            None => {
                if map.remove(&self.id).is_some() {
                    ACTIVE.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }
}

/// Why the current thread's solve should abort, if it should: `None` when
/// no token is installed for this thread or the installed token is live.
/// One atomic load when no thread in the process has a token installed.
pub(crate) fn cancelled_reason() -> Option<&'static str> {
    if ACTIVE.load(Ordering::SeqCst) == 0 {
        return None;
    }
    let token = lock_registry().get(&std::thread::current().id()).cloned();
    token.and_then(|t| t.reason())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_cancels_all_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert_eq!(b.reason(), Some("cancelled"));
    }

    #[test]
    fn deadline_auto_cancels() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.reason(), Some("deadline exceeded"));
        let live = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!live.is_cancelled());
    }

    #[test]
    fn scoped_install_is_per_thread_and_nests() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        assert_eq!(cancelled_reason(), None);
        {
            let _g1 = install_scoped(&outer);
            assert_eq!(cancelled_reason(), None);
            outer.cancel();
            assert_eq!(cancelled_reason(), Some("cancelled"));
            {
                // Nested install shadows, drop restores the outer token.
                let _g2 = install_scoped(&inner);
                assert_eq!(cancelled_reason(), None);
            }
            assert_eq!(cancelled_reason(), Some("cancelled"));
        }
        assert_eq!(cancelled_reason(), None);

        // Another thread never sees this thread's token.
        let other = CancelToken::new();
        other.cancel();
        let _g = install_scoped(&other);
        std::thread::spawn(|| assert_eq!(cancelled_reason(), None))
            .join()
            .expect("spawned thread");
    }
}
