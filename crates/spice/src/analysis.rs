//! DC operating-point and transient analyses.
//!
//! Both analyses assemble the modified nodal analysis (MNA) system
//! `J(x)·x = b(x)` and solve it by damped Newton iteration with the dense
//! LU factorization from `finrad-numerics`. Capacitors enter the transient
//! system through their backward-Euler companion model `i = C/h·(v − v⁻)`;
//! backward Euler is L-stable, which the stiff femtosecond-pulse →
//! picosecond-settling dynamics of an SRAM upset demand.

use crate::circuit::Circuit;
use crate::recovery::{RecoveryRung, RecoveryTrace};
use crate::waveform::{Probe, TransientResult};
use crate::{NodeId, SpiceError};
use finrad_numerics::matrix::{LuFactors, Matrix, StructuredLu};
use std::cell::RefCell;
use std::collections::HashMap;

/// Newton-iteration tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Convergence threshold on the largest voltage update, volts.
    pub vtol: f64,
    /// Maximum Newton iterations per solve.
    pub max_iter: usize,
    /// Per-iteration voltage-update clamp (damping), volts.
    pub max_step: f64,
    /// Conductance from every node to ground that keeps the system
    /// non-singular when subcircuits float, siemens.
    pub gmin: f64,
    /// Hard clamp on node voltages during iteration (keeps the EKV
    /// exponentials out of overflow territory and Newton out of spurious
    /// far-away basins), volts.
    pub v_clamp: (f64, f64),
    /// Maximum number of times a failing transient step is halved before
    /// giving up (SPICE-style timestep rejection).
    pub max_step_halvings: u32,
    /// Absolute floor on the transient timestep, seconds: a rejected step
    /// is never halved below this, so the rejection cascade terminates
    /// with diagnostics instead of burrowing into denormal timesteps.
    /// The default (1e-21 s) sits well below any physical plan's
    /// `dt / 2^max_step_halvings`, so it only backstops pathological
    /// plans.
    pub min_dt: f64,
    /// Whether Newton may serve iterations from a retained Jacobian
    /// factorization (quasi-Newton chord steps: only the RHS residual is
    /// restamped while the factorization is fresh, across iterations and
    /// across transient steps). `false` stamps and factors a fresh
    /// Jacobian every iteration — classic full Newton, kept as the
    /// bit-exact reference path.
    pub jacobian_reuse: bool,
    /// Staleness bound: chord iterations a factorization may serve after
    /// the full iteration that computed it before a refresh is forced.
    /// `0` refactors every iteration even with `jacobian_reuse` on,
    /// which is bit-identical to full Newton (pinned by a test).
    pub max_jacobian_age: u32,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            vtol: 1.0e-7,
            max_iter: 120,
            max_step: 0.4,
            gmin: 1.0e-12,
            v_clamp: (-2.0, 3.0),
            max_step_halvings: 12,
            min_dt: 1.0e-21,
            jacobian_reuse: true,
            max_jacobian_age: 12,
        }
    }
}

/// A retained factorization is reused only while the timestep stays
/// within this ratio of the `dt` it was stamped at: the capacitor
/// companion conductances `C/dt` baked into the factors scale with `dt`,
/// so a bigger change (every LTE growth is ×2, every rejection halving
/// ×0.5) forces a refresh.
const JACOBIAN_REUSE_DT_RATIO: f64 = 1.25;

/// Chord staleness gate: a reused factorization must shrink the
/// nonlinear residual by at least this factor per iteration; when the
/// reduction rate collapses the Jacobian is declared stale and the
/// iteration falls back to a full refactorization.
const CHORD_CONTRACTION: f64 = 0.5;

/// LTE controller: absolute tolerance on the backward-Euler local
/// truncation-error estimate `½·h·max_n |v̇_n − v̇_n⁻|`, volts.
const LTE_TOL_VOLTS: f64 = 5.0e-3;

/// The controller doubles `dt` only while the estimate sits below this
/// fraction of [`LTE_TOL_VOLTS`] — hysteresis against grow/shrink
/// flapping at the threshold.
const LTE_GROW_MARGIN: f64 = 0.25;

/// Cap on adaptive growth: `dt` never exceeds this multiple of the
/// phase's base `dt`, bounding the worst-case per-step error even on a
/// perfectly flat tail.
const LTE_MAX_GROWTH: f64 = 64.0;

/// Solved static state of a circuit.
#[derive(Debug, Clone)]
pub struct OpPoint {
    node_voltages: Vec<f64>,
    vsource_currents: Vec<f64>,
}

impl OpPoint {
    /// Voltage of `node` (ground returns 0).
    ///
    /// Deliberately bare `f64`: the MNA engine works in the raw node-vector
    /// space (volts, SI) like any SPICE core; the typed boundary is the
    /// SRAM layer above.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.node_voltages[node.index()]
    }

    /// All node voltages, indexed by node id (entry 0 is ground).
    pub fn node_voltages(&self) -> &[f64] {
        &self.node_voltages
    }

    /// Current through the `k`-th voltage source (positive flowing from the
    /// positive terminal through the source to the negative terminal).
    pub fn vsource_current(&self, k: usize) -> f64 {
        self.vsource_currents[k]
    }
}

/// Per-analysis scratch state reused across Newton iterations and
/// transient steps: the assembled system buffers and the
/// structure-exploiting LU specialized to this circuit's fixed MNA
/// pattern. Lives behind a `RefCell` because assembly/solve is interior
/// bookkeeping of a logically-immutable solver.
struct SolverScratch {
    /// Jacobian buffer, re-stamped in place every iteration.
    j: Matrix,
    /// Right-hand-side buffer.
    b: Vec<f64>,
    /// Next-iterate buffer (full node vector including ground).
    v_next: Vec<f64>,
    /// Fixed-pattern LU; `None` until the first solve picks a pivot order.
    structured: Option<StructuredLu>,
    /// Nonlinear-residual buffer for the chord (quasi-Newton) path.
    r: Vec<f64>,
    /// Backward-Euler capacitor companions `(geq, ieq)`, hoisted out of
    /// the Newton loop: both depend only on `(dt, v_prev)`, fixed for a
    /// whole solve. Empty in DC analyses.
    cap_comp: Vec<(f64, f64)>,
    /// What the retained factorization was stamped for: `(transient?,
    /// dt, gmin)`. `None` when the factors are not reusable.
    factored_key: Option<(bool, f64, f64)>,
    /// Chord iterations served since the factorization was stamped.
    jacobian_age: u32,
    /// Linear solves served by the structured path since the last flush.
    structured_solves: u64,
    /// Dense partial-pivot fallbacks since the last flush (pivot-guard
    /// trips and first-time analyses).
    dense_fallbacks: u64,
    /// Chord iterations served by a retained factorization since flush.
    jacobian_reuses: u64,
    /// Iterations that stamped and factored a fresh Jacobian since flush.
    refactorizations: u64,
}

/// Assembles and solves one Newton iteration's linearized MNA system.
struct Assembler<'c> {
    ckt: &'c Circuit,
    n_nodes: usize,
    dim: usize,
    scratch: RefCell<SolverScratch>,
}

impl<'c> Assembler<'c> {
    fn new(ckt: &'c Circuit) -> Self {
        let n_nodes = ckt.node_count();
        let dim = (n_nodes - 1) + ckt.vsource_count();
        Self {
            ckt,
            n_nodes,
            dim,
            scratch: RefCell::new(SolverScratch {
                j: Matrix::zeros(dim, dim),
                b: vec![0.0; dim],
                v_next: vec![0.0; n_nodes],
                structured: None,
                r: vec![0.0; dim],
                cap_comp: Vec::new(),
                factored_key: None,
                jacobian_age: 0,
                structured_solves: 0,
                dense_fallbacks: 0,
                jacobian_reuses: 0,
                refactorizations: 0,
            }),
        }
    }

    /// Row/column of a node in the reduced system, or `None` for ground.
    fn idx(&self, node: NodeId) -> Option<usize> {
        (node.index() != 0).then(|| node.index() - 1)
    }

    fn branch_idx(&self, k: usize) -> usize {
        (self.n_nodes - 1) + k
    }

    /// Structural stamp mask of this circuit's MNA system: entry `(r, c)`
    /// is 1.0 iff *any* element ever stamps that position, mirroring
    /// [`Assembler::assemble_into`] with capacitors unconditionally
    /// included (DC patterns are a subset of the transient pattern).
    ///
    /// This is deliberately derived from which positions are stamped, not
    /// from a numeric instance: a conductance that happens to evaluate to
    /// `0.0` in one assembly may be nonzero in the next, and a pattern
    /// built from values would silently drop it from the factorization.
    fn stamp_mask(&self) -> Matrix {
        let mut m = Matrix::zeros(self.dim, self.dim);
        for n in 0..(self.n_nodes - 1) {
            m.add_at(n, n, 1.0);
        }
        for r in &self.ckt.resistors {
            stamp_mask_conductance(&mut m, self.idx(r.a), self.idx(r.b));
        }
        for c in &self.ckt.capacitors {
            stamp_mask_conductance(&mut m, self.idx(c.a), self.idx(c.b));
        }
        for (k, vs) in self.ckt.vsources.iter().enumerate() {
            let br = self.branch_idx(k);
            // The branch row/column needs a structural diagonal only via
            // its couplings; mark them and the (always-needed) couplings.
            if let Some(p) = self.idx(vs.pos) {
                m[(p, br)] = 1.0;
                m[(br, p)] = 1.0;
            }
            if let Some(n) = self.idx(vs.neg) {
                m[(n, br)] = 1.0;
                m[(br, n)] = 1.0;
            }
        }
        for mos in &self.ckt.mosfets {
            let (ig, id_, is_) = (
                self.idx(mos.gate),
                self.idx(mos.drain),
                self.idx(mos.source),
            );
            if let Some(d) = id_ {
                if let Some(g) = ig {
                    m[(d, g)] = 1.0;
                }
                m[(d, d)] = 1.0;
                if let Some(s) = is_ {
                    m[(d, s)] = 1.0;
                }
            }
            if let Some(s_row) = is_ {
                if let Some(g) = ig {
                    m[(s_row, g)] = 1.0;
                }
                if let Some(d) = id_ {
                    m[(s_row, d)] = 1.0;
                }
                m[(s_row, s_row)] = 1.0;
            }
        }
        m
    }

    /// Builds the linearized system at candidate node voltages `v`
    /// (length = node_count, entry 0 = ground = 0), allocating fresh
    /// buffers (cold paths only — the Newton loop uses
    /// [`Assembler::assemble_into`]).
    fn assemble(
        &self,
        v: &[f64],
        cap_comp: Option<&[(f64, f64)]>,
        time: f64,
        gmin: f64,
    ) -> (Matrix, Vec<f64>) {
        let mut j = Matrix::zeros(self.dim, self.dim);
        let mut b = vec![0.0; self.dim];
        self.assemble_into(&mut j, &mut b, v, cap_comp, time, gmin);
        (j, b)
    }

    /// Backward-Euler capacitor companions `(geq, ieq)` for the given
    /// transient state, or `None` in DC (capacitors open). Hoisted out of
    /// the Newton loop: both values depend only on `(dt, v_prev)`, which
    /// are fixed for a whole solve, so recomputing them per iteration
    /// (as the retired assembly did) was pure overhead.
    fn cap_companions(&self, cap_state: Option<(f64, &[f64])>) -> Option<Vec<(f64, f64)>> {
        cap_state.map(|(dt, v_prev)| {
            self.ckt
                .capacitors
                .iter()
                .map(|c| {
                    let geq = c.farads / dt;
                    // Companion current source: geq * (v_a_prev − v_b_prev)
                    // flowing the same way as the conductance.
                    (geq, geq * (v_prev[c.a.index()] - v_prev[c.b.index()]))
                })
                .collect()
        })
    }

    /// Like [`Assembler::assemble`], but stamping into caller-owned
    /// buffers so the Newton loop allocates nothing per iteration.
    ///
    /// `cap_comp`: precomputed [`Assembler::cap_companions`] enables the
    /// backward-Euler companion models; `None` leaves capacitors open
    /// (DC). `time`: evaluation time for source waveforms.
    fn assemble_into(
        &self,
        j: &mut Matrix,
        b: &mut [f64],
        v: &[f64],
        cap_comp: Option<&[(f64, f64)]>,
        time: f64,
        gmin: f64,
    ) {
        self.assemble_linear_into(j, b, cap_comp, time, gmin);

        // MOSFETs: linearized drain current with RHS correction so that the
        // solution of the linear system is the Newton update.
        for m in &self.ckt.mosfets {
            let (vg, vd, vs) = (v[m.gate.index()], v[m.drain.index()], v[m.source.index()]);
            let ss = m.device.evaluate(vg, vd, vs);
            self.stamp_mosfet(j, b, m, (vg, vd, vs), ss);
        }
    }

    /// Stamps every linear element (gmin leak, resistors, capacitor
    /// companions, sources) — the part of the system that does not depend
    /// on the candidate voltages, shared between [`Assembler::assemble_into`]
    /// and the batched Monte-Carlo seeding in [`warm_seed_batch`].
    fn assemble_linear_into(
        &self,
        j: &mut Matrix,
        b: &mut [f64],
        cap_comp: Option<&[(f64, f64)]>,
        time: f64,
        gmin: f64,
    ) {
        j.fill_zero();
        b.fill(0.0);

        // gmin to ground on every non-ground node.
        for n in 0..(self.n_nodes - 1) {
            j.add_at(n, n, gmin);
        }

        // Resistors.
        for r in &self.ckt.resistors {
            let (ia, ib) = (self.idx(r.a), self.idx(r.b));
            stamp_conductance(j, ia, ib, r.conductance);
        }

        // Capacitors (transient only), via their hoisted BE companions.
        if let Some(comp) = cap_comp {
            for (c, &(geq, ieq)) in self.ckt.capacitors.iter().zip(comp) {
                let (ia, ib) = (self.idx(c.a), self.idx(c.b));
                stamp_conductance(j, ia, ib, geq);
                if let Some(a) = ia {
                    b[a] += ieq;
                }
                if let Some(bb) = ib {
                    b[bb] -= ieq;
                }
            }
        }

        // Current sources: current leaves `from`, enters `to`.
        for s in &self.ckt.isources {
            let val = s.waveform.value(time);
            if let Some(f) = self.idx(s.from) {
                b[f] -= val;
            }
            if let Some(t) = self.idx(s.to) {
                b[t] += val;
            }
        }

        // Voltage sources: branch current unknown + constraint row.
        for (k, vs) in self.ckt.vsources.iter().enumerate() {
            let br = self.branch_idx(k);
            if let Some(p) = self.idx(vs.pos) {
                j.add_at(p, br, 1.0);
                j.add_at(br, p, 1.0);
            }
            if let Some(n) = self.idx(vs.neg) {
                j.add_at(n, br, -1.0);
                j.add_at(br, n, -1.0);
            }
            b[br] = vs.volts;
        }
    }

    /// Stamps one MOSFET's linearization (Jacobian conductances + RHS
    /// correction) at terminal voltages `(vg, vd, vs)`.
    fn stamp_mosfet(
        &self,
        j: &mut Matrix,
        b: &mut [f64],
        m: &crate::circuit::MosfetInst,
        (vg, vd, vs): (f64, f64, f64),
        ss: finrad_finfet::SmallSignal,
    ) {
        // i_d(v) ≈ ss.id + gg·(vg'-vg) + gd·(vd'-vd) + gs·(vs'-vs)
        //        = [gg·vg' + gd·vd' + gs·vs'] + i_rhs
        let i_rhs = ss.id - ss.did_dvg * vg - ss.did_dvd * vd - ss.did_dvs * vs;
        let (ig, id_, is_) = (self.idx(m.gate), self.idx(m.drain), self.idx(m.source));
        // Current flows into drain, out of source.
        if let Some(d) = id_ {
            if let Some(g) = ig {
                j.add_at(d, g, ss.did_dvg);
            }
            j.add_at(d, d, ss.did_dvd);
            if let Some(s) = is_ {
                j.add_at(d, s, ss.did_dvs);
            }
            b[d] -= i_rhs;
        }
        if let Some(s_row) = is_ {
            if let Some(g) = ig {
                j.add_at(s_row, g, -ss.did_dvg);
            }
            if let Some(d) = id_ {
                j.add_at(s_row, d, -ss.did_dvd);
            }
            j.add_at(s_row, s_row, -ss.did_dvs);
            b[s_row] += i_rhs;
        }
    }

    /// Stamps the *nonlinear* KCL residual `F(v, i_br)` at the given
    /// iterate into `r` — the RHS of the chord (quasi-Newton) system
    /// `J₀·δ = F` — without touching the Jacobian. For every linear
    /// element `F` is exact; for MOSFETs it is the true drain current, so
    /// a chord iterate accepted at `vtol` satisfies the same nonlinear
    /// KCL the full-Newton iterate does: reuse never degrades the
    /// converged answer, only (at worst) the iteration count.
    fn residual_into(
        &self,
        r: &mut [f64],
        v: &[f64],
        branch: &[f64],
        cap_comp: Option<&[(f64, f64)]>,
        time: f64,
        gmin: f64,
    ) {
        r.fill(0.0);

        for n in 1..self.n_nodes {
            r[n - 1] = gmin * v[n];
        }
        for res in &self.ckt.resistors {
            let i = res.conductance * (v[res.a.index()] - v[res.b.index()]);
            if let Some(a) = self.idx(res.a) {
                r[a] += i;
            }
            if let Some(b) = self.idx(res.b) {
                r[b] -= i;
            }
        }
        if let Some(comp) = cap_comp {
            for (c, &(geq, ieq)) in self.ckt.capacitors.iter().zip(comp) {
                let i = geq * (v[c.a.index()] - v[c.b.index()]) - ieq;
                if let Some(a) = self.idx(c.a) {
                    r[a] += i;
                }
                if let Some(b) = self.idx(c.b) {
                    r[b] -= i;
                }
            }
        }
        for s in &self.ckt.isources {
            let val = s.waveform.value(time);
            if let Some(f) = self.idx(s.from) {
                r[f] += val;
            }
            if let Some(t) = self.idx(s.to) {
                r[t] -= val;
            }
        }
        for (k, vs) in self.ckt.vsources.iter().enumerate() {
            let i_br = branch[k];
            if let Some(p) = self.idx(vs.pos) {
                r[p] += i_br;
            }
            if let Some(n) = self.idx(vs.neg) {
                r[n] -= i_br;
            }
            r[self.branch_idx(k)] = v[vs.pos.index()] - v[vs.neg.index()] - vs.volts;
        }
        for m in &self.ckt.mosfets {
            let ss = m
                .device
                .evaluate(v[m.gate.index()], v[m.drain.index()], v[m.source.index()]);
            if let Some(d) = self.idx(m.drain) {
                r[d] += ss.id;
            }
            if let Some(s) = self.idx(m.source) {
                r[s] -= ss.id;
            }
        }
    }

    /// Runs damped Newton from `v_guess`, returning node voltages (full,
    /// including ground), voltage-source branch currents, and the number
    /// of Newton iterations spent — the quantity warm-start callers use
    /// to measure their saving.
    fn newton(
        &self,
        v_guess: &[f64],
        cap_state: Option<(f64, &[f64])>,
        time: f64,
        opts: &NewtonOptions,
        gmin: f64,
        context: &str,
    ) -> Result<(Vec<f64>, Vec<f64>, usize), SpiceError> {
        let result = self.newton_inner(v_guess, cap_state, time, opts, gmin, context);
        // Flush the batched linear-solve counters exactly once per solve,
        // success or failure.
        let scratch = &mut *self.scratch.borrow_mut();
        if scratch.structured_solves > 0 {
            finrad_observe::counter_add(
                finrad_observe::keys::SPICE_LU_STRUCTURED,
                scratch.structured_solves,
            );
            scratch.structured_solves = 0;
        }
        if scratch.dense_fallbacks > 0 {
            finrad_observe::counter_add(
                finrad_observe::keys::SPICE_LU_DENSE_FALLBACKS,
                scratch.dense_fallbacks,
            );
            scratch.dense_fallbacks = 0;
        }
        if scratch.jacobian_reuses > 0 {
            finrad_observe::counter_add(
                finrad_observe::keys::SPICE_NEWTON_JACOBIAN_REUSES,
                scratch.jacobian_reuses,
            );
            scratch.jacobian_reuses = 0;
        }
        if scratch.refactorizations > 0 {
            finrad_observe::counter_add(
                finrad_observe::keys::SPICE_NEWTON_REFACTORIZATIONS,
                scratch.refactorizations,
            );
            scratch.refactorizations = 0;
        }
        result
    }

    fn newton_inner(
        &self,
        v_guess: &[f64],
        cap_state: Option<(f64, &[f64])>,
        time: f64,
        opts: &NewtonOptions,
        gmin: f64,
        context: &str,
    ) -> Result<(Vec<f64>, Vec<f64>, usize), SpiceError> {
        #[cfg(feature = "fault-injection")]
        if let Some(stall) = crate::fault::take_stall() {
            // Model a wedged solve: sleep, then fall through to the
            // cancellation poll below so deadlines fire deterministically.
            std::thread::sleep(stall);
        }
        // Cooperative cancellation: polled before the (expensive) iteration
        // starts, after any injected stall so a stalled solve notices its
        // expired deadline on wake-up.
        if let Some(reason) = crate::cancel::cancelled_reason() {
            finrad_observe::counter_add(finrad_observe::keys::SPICE_NEWTON_CANCELLED, 1);
            return Err(SpiceError::Cancelled {
                context: format!("{context} ({reason})"),
            });
        }
        #[cfg(feature = "fault-injection")]
        if crate::fault::take_nonconvergence() {
            return Err(SpiceError::NoConvergence {
                context: format!("{context} [injected fault]"),
                iterations: 0,
                last_delta: f64::INFINITY,
                worst_residual: f64::INFINITY,
                rungs: Vec::new(),
            });
        }

        let mut v = v_guess.to_vec();
        let mut branch = vec![0.0; self.ckt.vsource_count()];
        let mut last_delta = f64::INFINITY;
        finrad_observe::counter_add(finrad_observe::keys::SPICE_NEWTON_SOLVES, 1);
        let scratch = &mut *self.scratch.borrow_mut();

        // Hoist the backward-Euler companions: `geq = C/dt` and the
        // companion current depend only on `(dt, v_prev)`, fixed for the
        // whole solve, so they are computed once here instead of on every
        // Newton iteration.
        match self.cap_companions(cap_state) {
            Some(comp) => scratch.cap_comp = comp,
            None => scratch.cap_comp.clear(),
        }

        // Retained-factorization freshness across solves (and therefore
        // across transient steps): the factors are only reusable for the
        // same analysis kind and gmin, with dt within a fixed ratio of
        // the dt they were stamped at.
        let key = (
            cap_state.is_some(),
            cap_state.map_or(0.0, |(dt, _)| dt),
            gmin,
        );
        let reusable = scratch.factored_key.is_some_and(|(tr, fdt, fg)| {
            tr == key.0
                && fg == key.2
                && (!tr
                    || (fdt <= key.1 * JACOBIAN_REUSE_DT_RATIO
                        && key.1 <= fdt * JACOBIAN_REUSE_DT_RATIO))
        });
        if !reusable {
            scratch.factored_key = None;
        }
        // Residual infinity-norm of the previous chord iteration, the
        // staleness signal: a retained Jacobian that stops contracting
        // the residual is refreshed.
        let mut prev_residual: Option<f64> = None;

        for iter in 0..opts.max_iter {
            // Quasi-Newton chord attempt: while the retained factorization
            // is fresh, restamp only the RHS (the true nonlinear residual)
            // and solve `J₀·δ = F` with the existing factors. Any
            // staleness signal — age over budget, residual-reduction-rate
            // collapse, or a failed triangular solve — falls through to
            // the full refactorization below, so convergence behavior is
            // never silently degraded.
            // Chord steps are transient-only: that is where the reuse pays
            // (tens of thousands of per-step factorizations), while DC
            // solves — warm-start dominated and pinned by bit-exact
            // accuracy tests — keep the classic full-Newton path.
            let mut chord_applied: Option<f64> = None;
            if opts.jacobian_reuse
                && key.0
                && scratch.factored_key.is_some()
                && scratch.jacobian_age < opts.max_jacobian_age
            {
                let comp = key.0.then_some(&scratch.cap_comp[..]);
                let SolverScratch { r, .. } = scratch;
                self.residual_into(r, &v, &branch, comp, time, gmin);
                let rnorm = r.iter().fold(0.0f64, |m, x| m.max(x.abs()));
                let contracting = prev_residual.is_none_or(|p| rnorm <= CHORD_CONTRACTION * p);
                let delta = if contracting {
                    scratch
                        .structured
                        .as_ref()
                        .and_then(|slu| slu.solve(&scratch.r).ok())
                } else {
                    None
                };
                if let Some(delta) = delta {
                    let mut max_applied = 0.0f64;
                    scratch.v_next[0] = 0.0;
                    for n in 1..self.n_nodes {
                        let step = (-delta[n - 1]).clamp(-opts.max_step, opts.max_step);
                        let clamped = (v[n] + step).clamp(opts.v_clamp.0, opts.v_clamp.1);
                        max_applied = max_applied.max((clamped - v[n]).abs());
                        scratch.v_next[n] = clamped;
                    }
                    for k in 0..branch.len() {
                        branch[k] -= delta[self.branch_idx(k)];
                    }
                    std::mem::swap(&mut v, &mut scratch.v_next);
                    scratch.jacobian_age += 1;
                    scratch.jacobian_reuses += 1;
                    scratch.structured_solves += 1;
                    prev_residual = Some(rnorm);
                    chord_applied = Some(max_applied);
                } else {
                    // Stale: force the full path this iteration.
                    scratch.factored_key = None;
                }
            }

            let max_applied = if let Some(applied) = chord_applied {
                applied
            } else {
                let comp = key.0.then_some(&scratch.cap_comp[..]);
                let SolverScratch { j, b, .. } = scratch;
                self.assemble_into(j, b, &v, comp, time, gmin);

                // Linear solve: the structure-exploiting fixed-pattern LU when
                // its frozen pivot order is stable for this Jacobian, dense
                // partial pivoting otherwise (also the first iteration, which
                // picks the pivot order the structured path then freezes).
                let structured_x = match scratch.structured.as_mut() {
                    Some(slu) => match slu.factor(&scratch.j) {
                        Ok(()) => {
                            Some(slu.solve(&scratch.b).map_err(|_| SpiceError::Singular {
                                context: context.to_owned(),
                            })?)
                        }
                        Err(_) => None,
                    },
                    None => None,
                };
                let numeric_factors_live = structured_x.is_some();
                let x = match structured_x {
                    Some(x) => {
                        scratch.structured_solves += 1;
                        x
                    }
                    None => {
                        scratch.dense_fallbacks += 1;
                        let lu = LuFactors::factor(scratch.j.clone()).map_err(|_| {
                            SpiceError::Singular {
                                context: context.to_owned(),
                            }
                        })?;
                        let x = lu.solve(&scratch.b).map_err(|_| SpiceError::Singular {
                            context: context.to_owned(),
                        })?;
                        // (Re-)analyze the fixed pattern under the pivot order
                        // dense pivoting just proved stable, so subsequent
                        // iterations take the structured path.
                        let mask = self.stamp_mask();
                        scratch.structured = StructuredLu::analyze(&mask, lu.perm().to_vec()).ok();
                        x
                    }
                };
                scratch.refactorizations += 1;
                scratch.jacobian_age = 0;
                // The chord path may only reuse factors that numerically
                // exist: a dense-fallback iteration leaves the structured
                // LU analyzed but unfactored.
                scratch.factored_key = numeric_factors_live.then_some(key);
                prev_residual = None;

                // Extract, damp and clamp the update. Convergence is judged on
                // the *applied* change: a node parked at the voltage clamp (the
                // stand-in for junction clamping under mA-scale strike pulses)
                // is stationary and must count as converged even though the
                // unclamped Newton target lies beyond the rail.
                let mut max_applied = 0.0f64;
                scratch.v_next[0] = 0.0;
                for n in 1..self.n_nodes {
                    let target = x[n - 1];
                    let delta = target - v[n];
                    let damped = delta.clamp(-opts.max_step, opts.max_step);
                    let clamped = (v[n] + damped).clamp(opts.v_clamp.0, opts.v_clamp.1);
                    max_applied = max_applied.max((clamped - v[n]).abs());
                    scratch.v_next[n] = clamped;
                }
                for k in 0..branch.len() {
                    branch[k] = x[self.branch_idx(k)];
                }
                std::mem::swap(&mut v, &mut scratch.v_next);
                max_applied
            };
            last_delta = max_applied;
            // The first iterate whose applied update is below tolerance is
            // accepted — including iteration 0, so a warm start from an
            // already-solved state costs exactly one solve instead of the
            // two the old `iter > 0` guard forced on every step.
            if max_applied < opts.vtol {
                finrad_observe::counter_add(
                    finrad_observe::keys::SPICE_NEWTON_ITERATIONS,
                    iter as u64 + 1,
                );
                return Ok((v, branch, iter + 1));
            }
        }
        finrad_observe::counter_add(
            finrad_observe::keys::SPICE_NEWTON_ITERATIONS,
            opts.max_iter as u64,
        );
        finrad_observe::counter_add(finrad_observe::keys::SPICE_NEWTON_FAILURES, 1);
        Err(SpiceError::NoConvergence {
            context: context.to_owned(),
            iterations: opts.max_iter,
            last_delta,
            worst_residual: self.worst_residual(&v, &branch, cap_state, time, gmin),
            rungs: Vec::new(),
        })
    }

    /// Worst-node KCL residual `max |J·x − b|` of the linearized system at
    /// the given iterate — the actionable "how far from a solution were
    /// we" number attached to convergence failures.
    fn worst_residual(
        &self,
        v: &[f64],
        branch: &[f64],
        cap_state: Option<(f64, &[f64])>,
        time: f64,
        gmin: f64,
    ) -> f64 {
        let comp = self.cap_companions(cap_state);
        let (j, b) = self.assemble(v, comp.as_deref(), time, gmin);
        let mut x = vec![0.0; self.dim];
        for n in 1..self.n_nodes {
            x[n - 1] = v[n];
        }
        for (k, &i) in branch.iter().enumerate() {
            x[self.branch_idx(k)] = i;
        }
        match j.mul_vec(&x) {
            Ok(jx) => jx
                .iter()
                .zip(&b)
                .map(|(a, r)| (a - r).abs())
                .fold(0.0, f64::max),
            Err(_) => f64::NAN,
        }
    }
}

/// Advances the transient solution from `t` to `t + dt`, recursively
/// halving the step (SPICE-style timestep rejection) when Newton fails —
/// the remedy for steps that straddle the cell's metastable transition.
///
/// The cascade is bounded twice: by `opts.max_step_halvings` and by the
/// absolute floor `opts.min_dt`. Hitting either bound fails with the
/// rejected step's full diagnostics (time, dt, depth, floor) attached to
/// the error instead of a context-free `NoConvergence`; every halving is
/// recorded in `trace`.
fn advance_step(
    asm: &Assembler<'_>,
    v: Vec<f64>,
    t: f64,
    dt: f64,
    opts: &NewtonOptions,
    depth: u32,
    trace: &mut RecoveryTrace,
) -> Result<Vec<f64>, SpiceError> {
    match asm.newton(
        &v,
        Some((dt, &v)),
        t + dt,
        opts,
        opts.gmin,
        "transient step",
    ) {
        Ok((vn, _branch, _iters)) => Ok(vn),
        // Cancelled steps are never retried at a smaller dt: propagate.
        Err(e @ SpiceError::Cancelled { .. }) => Err(e),
        Err(e) => {
            let half = dt / 2.0;
            if depth >= opts.max_step_halvings || half < opts.min_dt {
                trace.record(
                    RecoveryRung::ReducedTimestep,
                    false,
                    format!(
                        "step rejected at t = {t:.6e} s: dt = {dt:.3e} s after {depth} \
                         halving(s), floor {:.3e} s, budget {}",
                        opts.min_dt, opts.max_step_halvings
                    ),
                );
                return Err(match e {
                    SpiceError::NoConvergence {
                        context,
                        iterations,
                        last_delta,
                        worst_residual,
                        ..
                    } => SpiceError::NoConvergence {
                        context: format!(
                            "{context} (t = {t:.6e} s, dt = {dt:.3e} s, {depth} halving(s), \
                             floor {:.3e} s)",
                            opts.min_dt
                        ),
                        iterations,
                        last_delta,
                        worst_residual,
                        rungs: vec![RecoveryRung::ReducedTimestep],
                    },
                    other => other,
                });
            }
            trace.record(
                RecoveryRung::ReducedTimestep,
                true,
                format!(
                    "halved dt to {half:.3e} s at t = {t:.6e} s (depth {})",
                    depth + 1
                ),
            );
            let mid = advance_step(asm, v, t, half, opts, depth + 1, trace)?;
            advance_step(asm, mid, t + half, half, opts, depth + 1, trace)
        }
    }
}

/// Marks the positions [`stamp_conductance`] would touch in a structural
/// mask (value 1.0 = structurally nonzero).
fn stamp_mask_conductance(m: &mut Matrix, ia: Option<usize>, ib: Option<usize>) {
    stamp_conductance(m, ia, ib, 1.0);
    // `stamp_conductance` writes -g off-diagonal; overwrite with the flag
    // value so the mask is uniformly 0/positive.
    if let (Some(a), Some(b)) = (ia, ib) {
        m[(a, b)] = 1.0;
        m[(b, a)] = 1.0;
    }
}

fn stamp_conductance(j: &mut Matrix, ia: Option<usize>, ib: Option<usize>, g: f64) {
    if let Some(a) = ia {
        j.add_at(a, a, g);
    }
    if let Some(b) = ib {
        j.add_at(b, b, g);
    }
    if let (Some(a), Some(b)) = (ia, ib) {
        j.add_at(a, b, -g);
        j.add_at(b, a, -g);
    }
}

/// Solves the DC operating point (capacitors open, sources at `t = 0`).
///
/// Robustness comes from g-min stepping: the network is first solved with a
/// large leak conductance to ground, which is then relaxed geometrically to
/// `opts.gmin`, warm-starting each stage from the previous solution.
///
/// # Errors
///
/// * [`SpiceError::InvalidElement`] for a degenerate netlist.
/// * [`SpiceError::NoConvergence`] / [`SpiceError::Singular`] if the final
///   g-min stage fails.
pub fn dc_operating_point(ckt: &Circuit, opts: &NewtonOptions) -> Result<OpPoint, SpiceError> {
    dc_operating_point_from(ckt, opts, &HashMap::new())
}

/// Like [`dc_operating_point`] but starting the Newton iteration from the
/// given node-voltage guesses — the way to select *which* stable state a
/// bistable circuit (like an SRAM cell) settles into.
///
/// # Errors
///
/// Same as [`dc_operating_point`].
pub fn dc_operating_point_from(
    ckt: &Circuit,
    opts: &NewtonOptions,
    guess: &HashMap<NodeId, f64>,
) -> Result<OpPoint, SpiceError> {
    dc_operating_point_with_recovery(ckt, opts, guess).map(|(op, _trace)| op)
}

/// Warm-started DC operating point: seeds Newton with `state`, a full
/// node-voltage vector (indexed by node id, entry 0 = ground) from an
/// already-solved near-identical circuit — e.g. the nominal-variation
/// operating point when solving a Monte-Carlo ΔVth sample.
///
/// Records `spice.newton.warm_starts` and the iterations the warm solve
/// actually spent under `spice.newton.warm_start_iterations`, so the
/// saving against cold starts is directly observable. If the warm solve
/// fails to converge, falls back to the full cold-start recovery ladder
/// seeded from the same state.
///
/// # Errors
///
/// Same as [`dc_operating_point`], after the fallback ladder is exhausted.
///
/// # Panics
///
/// Panics if `state` is shorter than the circuit's node count.
pub fn dc_operating_point_warm(
    ckt: &Circuit,
    opts: &NewtonOptions,
    state: &[f64],
) -> Result<OpPoint, SpiceError> {
    ckt.validate()?;
    assert!(
        state.len() >= ckt.node_count(),
        "warm-start state has {} entries for {} nodes",
        state.len(),
        ckt.node_count()
    );
    let asm = Assembler::new(ckt);
    match asm.newton(
        &state[..ckt.node_count()],
        None,
        0.0,
        opts,
        opts.gmin,
        "dc operating point (warm)",
    ) {
        Ok((vn, branch, iters)) => {
            finrad_observe::counter_add(finrad_observe::keys::SPICE_NEWTON_WARM_STARTS, 1);
            finrad_observe::counter_add(
                finrad_observe::keys::SPICE_NEWTON_WARM_ITERATIONS,
                iters as u64,
            );
            Ok(OpPoint {
                node_voltages: vn,
                vsource_currents: branch,
            })
        }
        Err(e @ SpiceError::Cancelled { .. }) => Err(e),
        Err(_) => {
            // Cold fallback: the state still selects the bistable basin.
            let guess: HashMap<NodeId, f64> = (0..ckt.node_count())
                .map(|i| (NodeId(i), state[i]))
                .collect();
            dc_operating_point_from(ckt, opts, &guess)
        }
    }
}

/// Batched one-step Newton seeds for a family of ΔVth Monte-Carlo
/// samples sharing one base circuit and one solved `state`.
///
/// `deltas_by_mosfet[i][k]` is the threshold shift applied to MOSFET `i`
/// (in [`Circuit::mosfet_ids`] order) in sample lane `k`; every inner
/// slice must have the same lane count. The linear MNA template (gmin,
/// resistors, sources — identical across lanes) is stamped once, each
/// device is evaluated across all lanes in one SoA
/// [`Circuit::evaluate_mosfet_batch`] call, and each lane then pays only
/// its per-sample MOSFET stamps plus one dense solve. The returned seed
/// for lane `k` is the damped, clamped single Newton iterate of the
/// *sample* circuit started from `state` — exactly what
/// [`dc_operating_point_warm`] wants as its starting vector, typically
/// leaving it a single confirming iteration from convergence.
///
/// A lane depends only on `(state, its own deltas)`, so results are
/// independent of how callers chunk lanes across threads.
///
/// # Errors
///
/// [`SpiceError::InvalidElement`] for a degenerate netlist,
/// [`SpiceError::Singular`] if a lane's linearized system cannot be
/// factored; callers should fall back to scalar cold/warm solves.
///
/// # Panics
///
/// Panics if `state` is shorter than the node count, if
/// `deltas_by_mosfet` does not have one entry per MOSFET, or if the
/// inner lane counts disagree.
pub fn warm_seed_batch(
    ckt: &Circuit,
    opts: &NewtonOptions,
    state: &[f64],
    deltas_by_mosfet: &[Vec<f64>],
) -> Result<Vec<Vec<f64>>, SpiceError> {
    ckt.validate()?;
    let n_nodes = ckt.node_count();
    assert!(
        state.len() >= n_nodes,
        "seed state has {} entries for {n_nodes} nodes",
        state.len()
    );
    assert_eq!(
        deltas_by_mosfet.len(),
        ckt.mosfet_count(),
        "one ΔVth lane vector per MOSFET"
    );
    let lanes = deltas_by_mosfet.first().map_or(0, Vec::len);
    assert!(
        deltas_by_mosfet.iter().all(|d| d.len() == lanes),
        "ragged ΔVth lanes"
    );
    if lanes == 0 {
        return Ok(Vec::new());
    }

    let asm = Assembler::new(ckt);
    let dim = (n_nodes - 1) + ckt.vsource_count();
    let mut j_template = Matrix::zeros(dim, dim);
    let mut b_template = vec![0.0; dim];
    // DC seeding: capacitors open, sources at t = 0, final gmin.
    asm.assemble_linear_into(&mut j_template, &mut b_template, None, 0.0, opts.gmin);

    // One SoA model evaluation per device covers every lane.
    let mut batches: Vec<finrad_finfet::SmallSignalBatch> = deltas_by_mosfet
        .iter()
        .map(|d| finrad_finfet::SmallSignalBatch::with_capacity(d.len()))
        .collect();
    for (i, id) in ckt.mosfet_ids().enumerate() {
        ckt.evaluate_mosfet_batch(id, state, &deltas_by_mosfet[i], &mut batches[i]);
    }

    let mut seeds = Vec::with_capacity(lanes);
    for k in 0..lanes {
        let mut j = j_template.clone();
        let mut b = b_template.clone();
        for (m, batch) in ckt.mosfets.iter().zip(&batches) {
            let (vg, vd, vs) = (
                state[m.gate.index()],
                state[m.drain.index()],
                state[m.source.index()],
            );
            asm.stamp_mosfet(&mut j, &mut b, m, (vg, vd, vs), batch.lane(k));
        }
        let lu = LuFactors::factor(j).map_err(|_| SpiceError::Singular {
            context: format!("warm seed batch lane {k}"),
        })?;
        let x = lu.solve(&b).map_err(|_| SpiceError::Singular {
            context: format!("warm seed batch lane {k}"),
        })?;
        // One damped, clamped Newton step from the shared state — the
        // same update rule as the full solver, so a seed is always a
        // legal iterate.
        let mut seed = vec![0.0; n_nodes];
        for n in 1..n_nodes {
            let delta = (x[n - 1] - state[n]).clamp(-opts.max_step, opts.max_step);
            seed[n] = (state[n] + delta).clamp(opts.v_clamp.0, opts.v_clamp.1);
        }
        seeds.push(seed);
    }
    Ok(seeds)
}

/// Like [`dc_operating_point_from`] but additionally returning the
/// [`RecoveryTrace`] of the convergence-recovery ladder: direct solve →
/// g-min stepping → source stepping (see [`crate::recovery`]). The trace
/// records every rung attempted, so callers and logs see what was retried
/// and why; when all rungs fail, the terminal
/// [`SpiceError::NoConvergence`] carries the attempted rungs.
///
/// # Errors
///
/// Same as [`dc_operating_point`], after all rungs are exhausted.
pub fn dc_operating_point_with_recovery(
    ckt: &Circuit,
    opts: &NewtonOptions,
    guess: &HashMap<NodeId, f64>,
) -> Result<(OpPoint, RecoveryTrace), SpiceError> {
    ckt.validate()?;
    let asm = Assembler::new(ckt);
    let mut trace = RecoveryTrace::new();
    let mut v0 = vec![0.0; ckt.node_count()];
    for (&node, &val) in guess {
        v0[node.index()] = val;
    }

    // Rung 1 — direct solve from the guess: preserves the basin of
    // attraction of bistable circuits (an SRAM cell's state); the rungs
    // below are fallbacks for cold starts, where the strong initial leak
    // or the supply ramp would wash the guess out.
    match asm.newton(&v0, None, 0.0, opts, opts.gmin, "dc operating point") {
        Ok((vn, branch, _iters)) => {
            trace.record(RecoveryRung::Direct, true, "converged from initial guess");
            return Ok((
                OpPoint {
                    node_voltages: vn,
                    vsource_currents: branch,
                },
                trace,
            ));
        }
        // Cancellation is not a convergence problem: no later rung may
        // retry a solve the supervisor asked us to abandon.
        Err(e @ SpiceError::Cancelled { .. }) => return Err(e),
        Err(e) => trace.record(RecoveryRung::Direct, false, e.to_string()),
    }

    // Rung 2 — g-min stepping: solve with a strong leak to ground, relax
    // it geometrically to opts.gmin, warm-starting each stage.
    let mut v = v0.clone();
    let mut result = None;
    let mut last_err: Option<SpiceError> = None;
    let mut gmin = 1.0e-3f64;
    let mut stages = 0u32;
    loop {
        gmin = gmin.max(opts.gmin);
        stages += 1;
        match asm.newton(
            &v,
            None,
            0.0,
            opts,
            gmin,
            "dc operating point (gmin stepping)",
        ) {
            Ok((vn, branch, _iters)) => {
                v = vn.clone();
                result = Some((vn, branch));
            }
            Err(e @ SpiceError::Cancelled { .. }) => return Err(e),
            Err(e) => {
                // A failed intermediate stage is tolerable; a failed final
                // stage fails the rung.
                if gmin <= opts.gmin {
                    result = None;
                    last_err = Some(e);
                }
            }
        }
        if gmin <= opts.gmin {
            break;
        }
        gmin *= 1.0e-3;
    }
    match result {
        Some((vn, branch)) => {
            trace.record(
                RecoveryRung::GminStepping,
                true,
                format!("converged after {stages} gmin stage(s)"),
            );
            return Ok((
                OpPoint {
                    node_voltages: vn,
                    vsource_currents: branch,
                },
                trace,
            ));
        }
        None => trace.record(
            RecoveryRung::GminStepping,
            false,
            last_err
                .as_ref()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "no stage converged".to_owned()),
        ),
    }

    // Rung 3 — source stepping: ramp every voltage source from 0 V to its
    // target in fixed fractions, warm-starting each step from the last.
    const RAMP_STEPS: usize = 8;
    let targets: Vec<f64> = ckt.vsources.iter().map(|s| s.volts).collect();
    let mut ramped = ckt.clone();
    let mut v = vec![0.0; ckt.node_count()];
    let mut last: Option<(Vec<f64>, Vec<f64>)> = None;
    let mut fail: Option<SpiceError> = None;
    for i in 1..=RAMP_STEPS {
        let alpha = i as f64 / RAMP_STEPS as f64;
        for (s, &t) in ramped.vsources.iter_mut().zip(&targets) {
            s.volts = t * alpha;
        }
        let asm_ramp = Assembler::new(&ramped);
        match asm_ramp.newton(
            &v,
            None,
            0.0,
            opts,
            opts.gmin,
            "dc operating point (source stepping)",
        ) {
            Ok((vn, branch, _iters)) => {
                v = vn.clone();
                last = Some((vn, branch));
            }
            Err(e @ SpiceError::Cancelled { .. }) => return Err(e),
            Err(e) => {
                trace.record(
                    RecoveryRung::SourceStepping,
                    false,
                    format!("ramp failed at {:.0}% supply: {e}", alpha * 100.0),
                );
                fail = Some(e);
                break;
            }
        }
    }
    if fail.is_none() {
        if let Some((vn, branch)) = last {
            trace.record(
                RecoveryRung::SourceStepping,
                true,
                format!("converged after {RAMP_STEPS}-step supply ramp"),
            );
            return Ok((
                OpPoint {
                    node_voltages: vn,
                    vsource_currents: branch,
                },
                trace,
            ));
        }
    }

    // Ladder exhausted: attach the attempted rungs to the terminal error.
    let rungs = trace.rungs_attempted();
    let terminal = fail.unwrap_or(SpiceError::NoConvergence {
        context: "dc operating point (source stepping)".to_owned(),
        iterations: opts.max_iter,
        last_delta: f64::NAN,
        worst_residual: f64::NAN,
        rungs: Vec::new(),
    });
    Err(match terminal {
        SpiceError::NoConvergence {
            context,
            iterations,
            last_delta,
            worst_residual,
            ..
        } => SpiceError::NoConvergence {
            context,
            iterations,
            last_delta,
            worst_residual,
            rungs,
        },
        other => other,
    })
}

/// One fixed-timestep phase of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Duration of the phase, seconds.
    pub duration: f64,
    /// Timestep within the phase, seconds.
    pub dt: f64,
}

/// A multi-phase timestep plan: fine steps around the pulse, coarse steps
/// for the settling tail.
///
/// A phase is either *fixed* — stepped on the exact derived grid
/// `phase_start + i·dt`, bit-reproducible — or *adaptive* — started at
/// the phase's `dt` and controlled by the backward-Euler local
/// truncation-error estimate, which grows the step geometrically over
/// smooth stretches (see [`TimeStepPlan::with_adaptive_phase`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeStepPlan {
    phases: Vec<Phase>,
    adaptive: Vec<bool>,
}

impl TimeStepPlan {
    /// Builds a plan from `(duration, dt)` phases; every phase steps on
    /// the exact fixed grid.
    ///
    /// # Panics
    ///
    /// Panics if any duration or dt is not strictly positive, or no phase
    /// is given.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        for p in &phases {
            assert!(
                p.duration > 0.0 && p.dt > 0.0 && p.dt <= p.duration,
                "invalid phase {p:?}"
            );
        }
        let adaptive = vec![false; phases.len()];
        Self { phases, adaptive }
    }

    /// Marks phase `index` as LTE-adaptive: its `dt` becomes the starting
    /// (and minimum controller) step, doubled while the local
    /// truncation-error estimate stays below tolerance, capped at a fixed
    /// multiple, and always clamped so no step crosses the phase
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_adaptive_phase(mut self, index: usize) -> Self {
        assert!(index < self.phases.len(), "phase index out of range");
        self.adaptive[index] = true;
        self
    }

    /// Whether phase `index` is LTE-adaptive.
    pub fn phase_adaptive(&self, index: usize) -> bool {
        self.adaptive.get(index).copied().unwrap_or(false)
    }

    /// A plan suited to SRAM upset simulation: resolves a pulse of width
    /// `pulse_width` starting at `pulse_start` with ~8 steps across it on
    /// an exact fixed grid (so waveform sampling and the stationarity
    /// early-exit stay bit-reproducible), then relaxes over `settle`
    /// under LTE-adaptive stepping seeded with the coarse tail dt.
    pub fn for_pulse(pulse_start: f64, pulse_width: f64, settle: f64) -> Self {
        let fine_dt = (pulse_width / 8.0).max(1.0e-16);
        let fine_span = pulse_start + pulse_width * 2.0;
        Self::new(vec![
            Phase {
                duration: fine_span,
                dt: fine_dt,
            },
            Phase {
                duration: settle,
                dt: (settle / 400.0).max(fine_dt),
            },
        ])
        .with_adaptive_phase(1)
    }

    /// Total simulated time.
    pub fn total_time(&self) -> f64 {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The phases of the plan.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }
}

/// Runs a transient simulation from explicit initial node voltages
/// (SPICE's `UIC` mode): capacitor state starts at the given voltages and
/// no DC operating point is computed first. Nodes absent from
/// `initial_conditions` start at 0 V.
///
/// `probes` selects which node voltages are recorded at every step.
///
/// # Errors
///
/// Propagates Newton failures ([`SpiceError::NoConvergence`],
/// [`SpiceError::Singular`]) and netlist validation errors.
pub fn transient(
    ckt: &Circuit,
    plan: &TimeStepPlan,
    initial_conditions: &HashMap<NodeId, f64>,
    probes: &[NodeId],
    opts: &NewtonOptions,
) -> Result<TransientResult, SpiceError> {
    transient_with_trace(ckt, plan, initial_conditions, probes, opts).map(|(res, _trace)| res)
}

/// Like [`transient`] but additionally returning the [`RecoveryTrace`] of
/// timestep rejections: every halving (and the terminal rejection, if the
/// halving cascade hits `opts.max_step_halvings` or the `opts.min_dt`
/// floor) is recorded, so callers see which steps were retried instead of
/// silent recursive halving.
///
/// # Errors
///
/// Same as [`transient`].
pub fn transient_with_trace(
    ckt: &Circuit,
    plan: &TimeStepPlan,
    initial_conditions: &HashMap<NodeId, f64>,
    probes: &[NodeId],
    opts: &NewtonOptions,
) -> Result<(TransientResult, RecoveryTrace), SpiceError> {
    let mut v = vec![0.0; ckt.node_count()];
    for (&node, &val) in initial_conditions {
        v[node.index()] = val;
    }
    run_transient(ckt, plan, v, probes, opts, None).map(|(res, trace, _stopped)| (res, trace))
}

/// Like [`transient`] but starting from a full node-voltage vector
/// (indexed by node id, entry 0 = ground) — typically a solved
/// [`OpPoint::node_voltages`], so the run begins from the true pre-strike
/// operating point instead of idealized rail voltages.
///
/// # Errors
///
/// Same as [`transient`].
///
/// # Panics
///
/// Panics if `state` is shorter than the circuit's node count.
pub fn transient_from_state(
    ckt: &Circuit,
    plan: &TimeStepPlan,
    state: &[f64],
    probes: &[NodeId],
    opts: &NewtonOptions,
) -> Result<TransientResult, SpiceError> {
    assert!(
        state.len() >= ckt.node_count(),
        "initial state has {} entries for {} nodes",
        state.len(),
        ckt.node_count()
    );
    run_transient(
        ckt,
        plan,
        state[..ckt.node_count()].to_vec(),
        probes,
        opts,
        None,
    )
    .map(|(res, _trace, _stopped)| res)
}

/// Like [`transient_from_state`], but consulting `stop` after every
/// accepted step: when it returns `true` the remaining plan is skipped and
/// the result ends at that sample. Returns the result and whether the run
/// was cut short.
///
/// The predicate sees the timestamp and the full node-voltage vector of
/// the accepted step. It is the hook for settle-phase early exits in
/// critical-charge searches: once the cell state is provably stationary,
/// simulating the rest of the tail adds nothing but wall time.
///
/// # Errors
///
/// Same as [`transient`].
///
/// # Panics
///
/// Panics if `state` is shorter than the circuit's node count.
pub fn transient_until(
    ckt: &Circuit,
    plan: &TimeStepPlan,
    state: &[f64],
    probes: &[NodeId],
    opts: &NewtonOptions,
    mut stop: impl FnMut(f64, &[f64]) -> bool,
) -> Result<(TransientResult, bool), SpiceError> {
    assert!(
        state.len() >= ckt.node_count(),
        "initial state has {} entries for {} nodes",
        state.len(),
        ckt.node_count()
    );
    run_transient(
        ckt,
        plan,
        state[..ckt.node_count()].to_vec(),
        probes,
        opts,
        Some(&mut stop),
    )
    .map(|(res, _trace, stopped)| (res, stopped))
}

/// Shared transient driver.
///
/// Timestamps are derived, not accumulated: step `i` of a phase runs from
/// `phase_start + i·dt`, and a phase whose duration is not an integer
/// multiple of `dt` gets an explicit remainder step, so the simulated
/// horizon equals the plan's horizon exactly and timestamps carry no
/// accumulated floating-point drift. (The retired implementation rounded
/// `duration/dt` to a step count and summed `t += dt`, silently stretching
/// or truncating non-conforming phases.)
fn run_transient(
    ckt: &Circuit,
    plan: &TimeStepPlan,
    mut v: Vec<f64>,
    probes: &[NodeId],
    opts: &NewtonOptions,
    mut stop: Option<&mut dyn FnMut(f64, &[f64]) -> bool>,
) -> Result<(TransientResult, RecoveryTrace, bool), SpiceError> {
    ckt.validate()?;
    let asm = Assembler::new(ckt);
    let mut trace = RecoveryTrace::new();

    let mut result = TransientResult::new(
        probes
            .iter()
            .map(|&n| Probe {
                node: n,
                name: ckt.node_name(n).to_owned(),
            })
            .collect(),
    );
    result.push_sample(0.0, probes.iter().map(|&n| v[n.index()]));

    let mut stopped = false;
    let mut lte_growths = 0u64;
    let mut phase_start = 0.0f64;
    'phases: for (pi, phase) in plan.phases().iter().enumerate() {
        if plan.phase_adaptive(pi) {
            // LTE-controlled phase. `dt` starts at the phase's base step
            // and doubles while the backward-Euler truncation-error
            // estimate `½·h·max_n |v̇_n − v̇_n⁻|` stays below tolerance;
            // the estimate exceeding tolerance (or a Newton rejection,
            // which shows up as recorded timestep halvings) folds it back
            // toward the base step. Steps never cross the phase boundary:
            // the last one is clamped to land on it exactly.
            let phase_end = phase_start + phase.duration;
            let dt_max = phase.dt * LTE_MAX_GROWTH;
            let mut dt = phase.dt;
            let mut t = phase_start;
            let mut v_old = vec![0.0; v.len()];
            let mut der = vec![0.0; v.len()];
            let mut der_prev: Vec<f64> = Vec::new();
            while phase_end - t > phase.dt * 1.0e-9 {
                let h = dt.min(phase_end - t);
                v_old.copy_from_slice(&v);
                let rejections_before = trace.attempts().len() + trace.suppressed();
                v = advance_step(&asm, v, t, h, opts, 0, &mut trace)?;
                let t1 = if phase_end - (t + h) <= phase.dt * 1.0e-9 {
                    phase_end
                } else {
                    t + h
                };
                result.push_sample(t1, probes.iter().map(|&n| v[n.index()]));
                if let Some(stop) = stop.as_deref_mut() {
                    if stop(t1, &v) {
                        stopped = true;
                        break 'phases;
                    }
                }
                for (d, (a, b)) in der.iter_mut().zip(v.iter().zip(&v_old)) {
                    *d = (a - b) / h;
                }
                if trace.attempts().len() + trace.suppressed() > rejections_before {
                    // The step-halving rejection path is the shrink side
                    // of this controller: a step Newton had to cut up is
                    // evidence dt outran the dynamics.
                    dt = phase.dt;
                } else if !der_prev.is_empty() {
                    let max_dd = der
                        .iter()
                        .zip(&der_prev)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    let est = 0.5 * h * max_dd;
                    if est > LTE_TOL_VOLTS && dt > phase.dt {
                        dt = (0.5 * dt).max(phase.dt);
                    } else if est < LTE_GROW_MARGIN * LTE_TOL_VOLTS && dt < dt_max && h >= dt {
                        dt = (2.0 * dt).min(dt_max);
                        lte_growths += 1;
                    }
                }
                der_prev.clear();
                der_prev.extend_from_slice(&der);
                t = t1;
            }
        } else {
            let n_full = (phase.duration / phase.dt).floor() as usize;
            let remainder = phase.duration - n_full as f64 * phase.dt;
            // Sub-ppb leftovers are quantization noise of `duration/dt`,
            // not a real remainder step.
            let has_remainder = remainder > phase.dt * 1.0e-9;
            for i in 0..n_full {
                let t0 = phase_start + i as f64 * phase.dt;
                v = advance_step(&asm, v, t0, phase.dt, opts, 0, &mut trace)?;
                let t1 = if i + 1 == n_full && !has_remainder {
                    phase_start + phase.duration
                } else {
                    phase_start + (i + 1) as f64 * phase.dt
                };
                result.push_sample(t1, probes.iter().map(|&n| v[n.index()]));
                if let Some(stop) = stop.as_deref_mut() {
                    if stop(t1, &v) {
                        stopped = true;
                        break 'phases;
                    }
                }
            }
            if has_remainder {
                let t0 = phase_start + n_full as f64 * phase.dt;
                v = advance_step(&asm, v, t0, remainder, opts, 0, &mut trace)?;
                let t1 = phase_start + phase.duration;
                result.push_sample(t1, probes.iter().map(|&n| v[n.index()]));
                if let Some(stop) = stop.as_deref_mut() {
                    if stop(t1, &v) {
                        stopped = true;
                        break 'phases;
                    }
                }
            }
        }
        phase_start += phase.duration;
    }
    if lte_growths > 0 {
        finrad_observe::counter_add(
            finrad_observe::keys::SPICE_TRANSIENT_LTE_STEP_GROWTHS,
            lte_growths,
        );
    }
    result.set_final_voltages(v);
    Ok((result, trace, stopped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use finrad_finfet::{FinFet, Polarity, Technology};
    use finrad_units::Charge;

    fn opts() -> NewtonOptions {
        NewtonOptions::default()
    }

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_vsource(vin, Circuit::GROUND, 1.2);
        ckt.add_resistor(vin, mid, 2.0e3);
        ckt.add_resistor(mid, Circuit::GROUND, 1.0e3);
        let op = dc_operating_point(&ckt, &opts()).unwrap();
        assert!((op.voltage(mid) - 0.4).abs() < 1e-9);
        assert!((op.voltage(vin) - 1.2).abs() < 1e-9);
        // Source current: 1.2 V over 3 kΩ, flowing out of + terminal =>
        // negative through-source convention current.
        assert!((op.vsource_current(0).abs() - 0.4e-3).abs() < 1e-9);
    }

    #[test]
    fn cancelled_token_aborts_solve_with_typed_error() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_vsource(vin, Circuit::GROUND, 1.2);
        ckt.add_resistor(vin, mid, 2.0e3);
        ckt.add_resistor(mid, Circuit::GROUND, 1.0e3);

        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let guard = crate::cancel::install_scoped(&token);
        let err = dc_operating_point(&ckt, &opts()).unwrap_err();
        match err {
            SpiceError::Cancelled { context } => {
                assert!(context.contains("cancelled"), "context: {context}")
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        drop(guard);

        // Detached, the same circuit solves normally again.
        assert!(dc_operating_point(&ckt, &opts()).is_ok());
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor(out, Circuit::GROUND, 1.0e3);
        ckt.add_isource(Circuit::GROUND, out, SourceWaveform::Dc(1.0e-3));
        let op = dc_operating_point(&ckt, &opts()).unwrap();
        assert!((op.voltage(out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmos_inverter_dc_transfer() {
        // NMOS with resistive load: out high when gate low, low when high.
        let tech = Technology::soi_finfet_14nm();
        let build = |vgate: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let g = ckt.node("g");
            let d = ckt.node("d");
            ckt.add_vsource(vdd, Circuit::GROUND, 0.8);
            ckt.add_vsource(g, Circuit::GROUND, vgate);
            ckt.add_resistor(vdd, d, 50.0e3);
            ckt.add_mosfet(d, g, Circuit::GROUND, FinFet::new(&tech, Polarity::Nmos, 1));
            let op = dc_operating_point(&ckt, &opts()).unwrap();
            op.voltage(d)
        };
        let out_low_gate = build(0.0);
        let out_high_gate = build(0.8);
        assert!(out_low_gate > 0.7, "out {out_low_gate}");
        assert!(out_high_gate < 0.2, "out {out_high_gate}");
    }

    #[test]
    fn cmos_inverter_rails() {
        let tech = Technology::soi_finfet_14nm();
        let build = |vin: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let a = ckt.node("a");
            let y = ckt.node("y");
            ckt.add_vsource(vdd, Circuit::GROUND, 0.8);
            ckt.add_vsource(a, Circuit::GROUND, vin);
            ckt.add_mosfet(y, a, Circuit::GROUND, FinFet::new(&tech, Polarity::Nmos, 1));
            ckt.add_mosfet(y, a, vdd, FinFet::new(&tech, Polarity::Pmos, 1));
            let op = dc_operating_point(&ckt, &opts()).unwrap();
            op.voltage(y)
        };
        assert!(build(0.0) > 0.78);
        assert!(build(0.8) < 0.02);
        // Transition region: output between rails at mid input.
        let mid = build(0.4);
        assert!(mid > 0.05 && mid < 0.78, "mid {mid}");
    }

    #[test]
    fn rc_discharge_matches_analytic() {
        // 1 kΩ || 1 pF from 1 V: v(t) = e^{-t/RC}.
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add_resistor(n, Circuit::GROUND, 1.0e3);
        ckt.add_capacitor(n, Circuit::GROUND, 1.0e-12);
        let tau = 1.0e-9;
        let plan = TimeStepPlan::new(vec![Phase {
            duration: 2.0 * tau,
            dt: tau / 2000.0,
        }]);
        let mut ic = HashMap::new();
        ic.insert(n, 1.0);
        let res = transient(&ckt, &plan, &ic, &[n], &opts()).unwrap();
        let (t_end, v_end) = res.last_sample(0).unwrap();
        let expect = (-t_end / tau).exp();
        assert!(
            (v_end - expect).abs() < 5e-3,
            "v({t_end}) = {v_end} vs {expect}"
        );
    }

    #[test]
    fn rc_charge_through_pulse() {
        // Rectangular current pulse into a capacitor: ΔV = Q/C.
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add_capacitor(n, Circuit::GROUND, 1.0e-15);
        // Tiny leak so the matrix is well-conditioned.
        ckt.add_resistor(n, Circuit::GROUND, 1.0e12);
        let q = 0.2e-15; // 0.2 fC into 1 fF => 0.2 V
        ckt.add_isource(
            Circuit::GROUND,
            n,
            SourceWaveform::rectangular_charge(Charge::from_coulombs(q), 1.0e-14, 1.0e-14),
        );
        let plan = TimeStepPlan::new(vec![Phase {
            duration: 5.0e-14,
            dt: 2.5e-16,
        }]);
        let res = transient(&ckt, &plan, &HashMap::new(), &[n], &opts()).unwrap();
        let (_t, v_end) = res.last_sample(0).unwrap();
        assert!((v_end - 0.2).abs() < 0.01, "v_end {v_end}");
    }

    /// A CMOS inverter holding its output high with a strike-like current
    /// pulse pulling the output down — the smallest circuit exercising
    /// both transient phases (fixed strike window + settling tail) the
    /// SRAM characterization uses.
    fn struck_inverter() -> (Circuit, NodeId, HashMap<NodeId, f64>) {
        let tech = Technology::soi_finfet_14nm();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let y = ckt.node("y");
        ckt.add_vsource(vdd, Circuit::GROUND, 0.8);
        ckt.add_vsource(a, Circuit::GROUND, 0.0);
        ckt.add_mosfet(y, a, Circuit::GROUND, FinFet::new(&tech, Polarity::Nmos, 1));
        ckt.add_mosfet(y, a, vdd, FinFet::new(&tech, Polarity::Pmos, 1));
        ckt.add_capacitor(y, Circuit::GROUND, 0.5e-15);
        ckt.add_isource(
            y,
            Circuit::GROUND,
            SourceWaveform::rectangular_charge(Charge::from_coulombs(1.0e-16), 2.0e-15, 1.6e-14),
        );
        let mut ic = HashMap::new();
        ic.insert(vdd, 0.8);
        ic.insert(y, 0.8);
        (ckt, y, ic)
    }

    #[test]
    fn adaptive_settle_matches_fixed_grid_reference() {
        let (ckt, y, ic) = struck_inverter();
        let phases = vec![
            Phase {
                duration: 3.2e-14,
                dt: 2.0e-15,
            },
            Phase {
                duration: 5.0e-12,
                dt: 1.25e-14,
            },
        ];
        let fixed = TimeStepPlan::new(phases.clone());
        let adaptive = TimeStepPlan::new(phases).with_adaptive_phase(1);
        let rf = transient(&ckt, &fixed, &ic, &[y], &opts()).unwrap();
        let ra = transient(&ckt, &adaptive, &ic, &[y], &opts()).unwrap();
        let (tf, vf) = rf.last_sample(0).unwrap();
        let (ta, va) = ra.last_sample(0).unwrap();
        // Both runs land exactly on the plan's end time; the adaptive
        // trajectory must settle to the same recovered output.
        assert_eq!(tf.to_bits(), ta.to_bits());
        assert!(
            (vf - va).abs() < 0.02,
            "fixed-grid {vf} vs adaptive {va} at t = {tf}"
        );
    }

    #[test]
    fn adaptive_steps_never_cross_phase_boundary_or_strike_window() {
        let (ckt, y, ic) = struck_inverter();
        let fine = Phase {
            duration: 3.2e-14,
            dt: 2.0e-15,
        };
        let settle = Phase {
            duration: 5.0e-12,
            dt: 1.25e-14,
        };
        let plan = TimeStepPlan::new(vec![fine, settle]).with_adaptive_phase(1);
        let res = transient(&ckt, &plan, &ic, &[y], &opts()).unwrap();
        let times = res.times();

        // The strike window steps on the exact fixed grid: every sample
        // timestamp is bit-identical to its `(i+1)·dt` grid point, so
        // waveform sampling inside the pulse stays reproducible no matter
        // what the settle controller does.
        let n_fine = (fine.duration / fine.dt).floor() as usize;
        assert_eq!(times[0].to_bits(), 0.0f64.to_bits(), "initial sample");
        for i in 0..n_fine {
            let expect = if i + 1 == n_fine {
                fine.duration
            } else {
                (i + 1) as f64 * fine.dt
            };
            assert_eq!(
                times[i + 1].to_bits(),
                expect.to_bits(),
                "fine sample {i}: {} vs {expect}",
                times[i + 1]
            );
        }

        // Adaptive samples stay strictly inside their phase, never exceed
        // the growth cap, and the run ends exactly on the plan's end.
        let end = fine.duration + settle.duration;
        let mut prev = fine.duration;
        for &t in &times[n_fine + 1..] {
            assert!(
                t > fine.duration && t <= end,
                "adaptive sample {t} escaped its phase"
            );
            let h = t - prev;
            assert!(
                h > 0.0 && h <= settle.dt * LTE_MAX_GROWTH * (1.0 + 1.0e-9),
                "adaptive step {h} outside [0, cap]"
            );
            prev = t;
        }
        assert_eq!(times.last().unwrap().to_bits(), end.to_bits());
    }

    #[test]
    fn forced_refresh_quasi_newton_matches_full_newton_bitwise() {
        let (ckt, y, ic) = struck_inverter();
        let plan = TimeStepPlan::new(vec![
            Phase {
                duration: 3.2e-14,
                dt: 2.0e-15,
            },
            Phase {
                duration: 1.0e-12,
                dt: 1.25e-14,
            },
        ])
        .with_adaptive_phase(1);
        let classic = NewtonOptions {
            jacobian_reuse: false,
            ..opts()
        };
        // A refresh budget of zero forces refactorization every iteration:
        // the reuse machinery must then reproduce classic full Newton to
        // the last bit, proving the fallback path is exact.
        let forced = NewtonOptions {
            jacobian_reuse: true,
            max_jacobian_age: 0,
            ..opts()
        };
        let rc = transient(&ckt, &plan, &ic, &[y], &classic).unwrap();
        let rf = transient(&ckt, &plan, &ic, &[y], &forced).unwrap();
        assert_eq!(rc.times().len(), rf.times().len());
        for (i, (a, b)) in rc.trace(0).iter().zip(rf.trace(0)).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sample {i}: forced-refresh {b} diverged from full Newton {a}"
            );
        }
    }

    #[test]
    fn nonconvergence_is_reported_not_hung() {
        // A pathological circuit: voltage source loop fighting itself is
        // caught by validation instead.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource(a, a, 1.0);
        assert!(matches!(
            dc_operating_point(&ckt, &opts()),
            Err(SpiceError::InvalidElement(_))
        ));
    }

    #[test]
    fn random_resistive_networks_satisfy_kirchhoff() {
        // Random ladder/mesh networks: the DC solution must satisfy KCL at
        // every non-source node (checked by reassembling branch currents).
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..20 {
            let n_nodes = 3 + (trial % 5);
            let mut ckt = Circuit::new();
            let nodes: Vec<_> = (0..n_nodes).map(|i| ckt.node(&format!("n{i}"))).collect();
            ckt.add_vsource(nodes[0], Circuit::GROUND, 1.0 + next());
            // Chain guaranteeing connectivity, plus random extra edges.
            let mut edges = Vec::new();
            for w in 0..(n_nodes - 1) {
                edges.push((nodes[w], nodes[w + 1], 100.0 + 1.0e4 * next()));
            }
            edges.push((nodes[n_nodes - 1], Circuit::GROUND, 500.0 + 1.0e3 * next()));
            for _ in 0..n_nodes {
                let a = nodes[(next() * n_nodes as f64) as usize % n_nodes];
                let b = nodes[(next() * n_nodes as f64) as usize % n_nodes];
                if a != b {
                    edges.push((a, b, 50.0 + 2.0e4 * next()));
                }
            }
            for &(a, b, r) in &edges {
                ckt.add_resistor(a, b, r);
            }
            let op = dc_operating_point(&ckt, &opts()).unwrap();
            // KCL at each non-driven node.
            for &node in &nodes[1..] {
                let mut sum = 0.0;
                for &(a, b, r) in &edges {
                    if a == node {
                        sum += (op.voltage(a) - op.voltage(b)) / r;
                    } else if b == node {
                        sum += (op.voltage(b) - op.voltage(a)) / r;
                    }
                }
                assert!(sum.abs() < 1e-9, "trial {trial}: KCL residual {sum}");
            }
        }
    }

    #[test]
    fn nonconvergence_error_carries_context() {
        // Starve the iteration budget to exercise the failure path.
        let tech = Technology::soi_finfet_14nm();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let y = ckt.node("y");
        ckt.add_vsource(vdd, Circuit::GROUND, 0.8);
        ckt.add_vsource(a, Circuit::GROUND, 0.4);
        ckt.add_mosfet(y, a, Circuit::GROUND, FinFet::new(&tech, Polarity::Nmos, 1));
        ckt.add_mosfet(y, a, vdd, FinFet::new(&tech, Polarity::Pmos, 1));
        let starved = NewtonOptions {
            max_iter: 1,
            ..NewtonOptions::default()
        };
        match dc_operating_point(&ckt, &starved) {
            Err(SpiceError::NoConvergence { context, .. }) => {
                assert!(context.contains("dc operating point"));
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn series_vsource_current_consistent() {
        // Two sources in a loop with a resistor: the branch currents of
        // both sources must match the Ohm's-law loop current.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(a, Circuit::GROUND, 2.0);
        ckt.add_vsource(b, Circuit::GROUND, 0.5);
        ckt.add_resistor(a, b, 1.0e3);
        let op = dc_operating_point(&ckt, &opts()).unwrap();
        let i_loop = (2.0 - 0.5) / 1.0e3;
        // Current flows out of the + terminal of source A through R into B.
        assert!((op.vsource_current(0) + i_loop).abs() < 1e-9);
        assert!((op.vsource_current(1) - i_loop).abs() < 1e-9);
    }

    #[test]
    fn capacitive_divider_transient() {
        // Charge injected into two series caps divides by capacitance:
        // dV across each is Q/C.
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.add_capacitor(top, mid, 1.0e-15);
        ckt.add_capacitor(mid, Circuit::GROUND, 3.0e-15);
        ckt.add_resistor(top, Circuit::GROUND, 1.0e15); // leak for matrix rank
        ckt.add_resistor(mid, Circuit::GROUND, 1.0e15);
        let q = 0.4e-15;
        ckt.add_isource(
            Circuit::GROUND,
            top,
            SourceWaveform::rectangular_charge(Charge::from_coulombs(q), 0.0, 1.0e-14),
        );
        let plan = TimeStepPlan::new(vec![Phase {
            duration: 1.2e-14,
            dt: 1.0e-16,
        }]);
        let res = transient(&ckt, &plan, &HashMap::new(), &[top, mid], &opts()).unwrap();
        let v_top = res.final_voltage(top);
        let v_mid = res.final_voltage(mid);
        // Series combination 0.75 fF sees 0.4 fC => 0.533 V at top;
        // mid node: Q/C2 = 0.133 V.
        assert!((v_top - q / 0.75e-15).abs() < 0.01, "v_top {v_top}");
        assert!((v_mid - q / 3.0e-15).abs() < 0.01, "v_mid {v_mid}");
    }

    #[test]
    fn set_vsource_voltage_retargets() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource(a, Circuit::GROUND, 1.0);
        ckt.add_resistor(a, Circuit::GROUND, 1.0e3);
        ckt.set_vsource_voltage(a, 0.25);
        let op = dc_operating_point(&ckt, &opts()).unwrap();
        assert!((op.voltage(a) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no ground-referenced source")]
    fn set_vsource_voltage_requires_existing_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor(a, Circuit::GROUND, 1.0e3);
        ckt.set_vsource_voltage(a, 0.5);
    }

    #[test]
    fn plan_construction() {
        let plan = TimeStepPlan::for_pulse(1.0e-14, 1.5e-14, 2.0e-11);
        assert!(plan.total_time() > 2.0e-11);
        assert_eq!(plan.phases().len(), 2);
        assert!(plan.phases()[0].dt < plan.phases()[1].dt);
    }

    #[test]
    #[should_panic(expected = "invalid phase")]
    fn plan_rejects_bad_phase() {
        let _ = TimeStepPlan::new(vec![Phase {
            duration: 1.0,
            dt: 0.0,
        }]);
    }

    #[test]
    fn non_integer_phase_simulates_exact_horizon() {
        // Regression: duration = 1.05e-9 with dt = 1e-10 used to round to
        // 10 steps (1.0e-9 simulated — wrong horizon) or 11 (1.1e-9).
        // Now: 10 full steps + one explicit 0.05e-9 remainder step, and
        // the last timestamp equals the plan horizon exactly.
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add_resistor(n, Circuit::GROUND, 1.0e3);
        ckt.add_capacitor(n, Circuit::GROUND, 1.0e-12);
        let plan = TimeStepPlan::new(vec![Phase {
            duration: 1.05e-9,
            dt: 1.0e-10,
        }]);
        let mut ic = HashMap::new();
        ic.insert(n, 1.0);
        let res = transient(&ckt, &plan, &ic, &[n], &opts()).unwrap();
        let (t_end, v_end) = res.last_sample(0).unwrap();
        assert_eq!(t_end, 1.05e-9, "horizon must be honored exactly");
        // RC decay over the full horizon (tau = 1 ns), backward Euler is
        // first-order so allow a generous band.
        let expect = (-1.05e-9f64 / 1.0e-9).exp();
        assert!((v_end - expect).abs() < 0.05, "v_end {v_end} vs {expect}");
        // 1 initial sample + 10 full + 1 remainder.
        assert_eq!(res.times().len(), 12);
    }

    #[test]
    fn timestamps_derived_not_accumulated() {
        // With dt = 0.1 ns (not exactly representable), summed timestamps
        // drift; derived ones hit i*dt to the last ulp.
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add_resistor(n, Circuit::GROUND, 1.0e3);
        ckt.add_capacitor(n, Circuit::GROUND, 1.0e-12);
        let dt = 1.0e-10;
        let plan = TimeStepPlan::new(vec![Phase {
            duration: 100.0 * dt,
            dt,
        }]);
        let res = transient(&ckt, &plan, &HashMap::new(), &[n], &opts()).unwrap();
        let times = res.times();
        assert_eq!(times.len(), 101);
        for (i, &t) in times.iter().enumerate().take(100) {
            assert_eq!(t, i as f64 * dt, "sample {i} drifted: {t}");
        }
        assert_eq!(*times.last().unwrap(), 100.0 * dt);
    }

    #[test]
    fn transient_from_state_matches_ic_map() {
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add_resistor(n, Circuit::GROUND, 1.0e3);
        ckt.add_capacitor(n, Circuit::GROUND, 1.0e-12);
        let plan = TimeStepPlan::new(vec![Phase {
            duration: 1.0e-9,
            dt: 1.0e-11,
        }]);
        let mut ic = HashMap::new();
        ic.insert(n, 0.7);
        let via_map = transient(&ckt, &plan, &ic, &[n], &opts()).unwrap();
        let state = vec![0.0, 0.7];
        let via_state = transient_from_state(&ckt, &plan, &state, &[n], &opts()).unwrap();
        let (ta, va) = via_map.last_sample(0).unwrap();
        let (tb, vb) = via_state.last_sample(0).unwrap();
        assert_eq!(ta, tb);
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "identical runs must be bit-identical"
        );
    }

    #[test]
    fn transient_until_stops_early() {
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add_resistor(n, Circuit::GROUND, 1.0e3);
        ckt.add_capacitor(n, Circuit::GROUND, 1.0e-12);
        let plan = TimeStepPlan::new(vec![Phase {
            duration: 5.0e-9,
            dt: 1.0e-11,
        }]);
        let state = vec![0.0, 1.0];
        let idx = n.index();
        let (res, stopped) =
            transient_until(&ckt, &plan, &state, &[n], &opts(), |_t, v| v[idx] < 0.5).unwrap();
        assert!(stopped, "decay through 0.5 V must trigger the stop");
        let (t_end, v_end) = res.last_sample(0).unwrap();
        assert!(t_end < 2.0e-9, "stopped at {t_end}, expected before 2 ns");
        assert!(v_end < 0.5 && v_end > 0.4, "v_end {v_end}");
    }

    #[test]
    fn warm_started_op_matches_cold() {
        let tech = Technology::soi_finfet_14nm();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let y = ckt.node("y");
        ckt.add_vsource(vdd, Circuit::GROUND, 0.8);
        ckt.add_vsource(a, Circuit::GROUND, 0.3);
        ckt.add_mosfet(y, a, Circuit::GROUND, FinFet::new(&tech, Polarity::Nmos, 1));
        ckt.add_mosfet(y, a, vdd, FinFet::new(&tech, Polarity::Pmos, 1));

        let cold = dc_operating_point(&ckt, &opts()).unwrap();
        let warm = dc_operating_point_warm(&ckt, &opts(), cold.node_voltages()).unwrap();
        for (c, w) in cold.node_voltages().iter().zip(warm.node_voltages()) {
            assert!((c - w).abs() < 1e-6, "cold {c} vs warm {w}");
        }
    }
}
