//! Time-dependent source waveforms.
//!
//! The radiation-induced parasitic current of the paper's Section 3.3 is a
//! rectangular pulse of width τ and amplitude Q/τ (Fig. 3(b)); the paper's
//! Section 4 additionally studies triangular pulses to show POF depends
//! only on the pulse *charge*. Both shapes are provided here.

use finrad_units::Charge;

/// Shape of a current pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PulseShape {
    /// Constant amplitude over the pulse width (the paper's Fig. 3(b)).
    #[default]
    Rectangular,
    /// Linear rise to a peak at the midpoint, then linear fall. At equal
    /// *peak* amplitude a triangle carries half the rectangle's charge.
    Triangular,
}

/// A time-dependent scalar waveform for current sources.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// A single pulse starting at `t_start` with the given width.
    Pulse {
        /// Peak value of the pulse, amperes.
        amplitude: f64,
        /// Pulse start time, seconds.
        t_start: f64,
        /// Pulse width, seconds.
        width: f64,
        /// Pulse shape.
        shape: PulseShape,
    },
}

impl SourceWaveform {
    /// A rectangular pulse carrying `charge` over `width` seconds, starting
    /// at `t_start`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive.
    pub fn rectangular_charge(charge: Charge, t_start: f64, width: f64) -> Self {
        assert!(width > 0.0, "pulse width must be positive");
        SourceWaveform::Pulse {
            amplitude: charge.coulombs() / width,
            t_start,
            width,
            shape: PulseShape::Rectangular,
        }
    }

    /// A triangular pulse carrying the same `charge` over `width` seconds
    /// (peak = 2·charge/width), for the paper's pulse-shape study.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive.
    pub fn triangular_charge(charge: Charge, t_start: f64, width: f64) -> Self {
        assert!(width > 0.0, "pulse width must be positive");
        SourceWaveform::Pulse {
            amplitude: 2.0 * charge.coulombs() / width,
            t_start,
            width,
            shape: PulseShape::Triangular,
        }
    }

    /// Waveform value at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match *self {
            SourceWaveform::Dc(v) => v,
            SourceWaveform::Pulse {
                amplitude,
                t_start,
                width,
                shape,
            } => {
                let x = t - t_start;
                if x < 0.0 || x > width {
                    return 0.0;
                }
                match shape {
                    PulseShape::Rectangular => amplitude,
                    PulseShape::Triangular => {
                        let half = width / 2.0;
                        if x <= half {
                            amplitude * x / half
                        } else {
                            amplitude * (width - x) / half
                        }
                    }
                }
            }
        }
    }

    /// Total charge delivered by the waveform over `[0, horizon]` for a
    /// pulse, or `value·horizon` for DC.
    pub fn charge_over(&self, horizon: f64) -> f64 {
        match *self {
            SourceWaveform::Dc(v) => v * horizon,
            SourceWaveform::Pulse {
                amplitude,
                t_start,
                width,
                shape,
            } => {
                // Analytic integral of the full pulse, truncated to horizon.
                let end = (horizon - t_start).clamp(0.0, width);
                match shape {
                    PulseShape::Rectangular => amplitude * end,
                    PulseShape::Triangular => {
                        let half = width / 2.0;
                        if end <= half {
                            0.5 * amplitude * end * end / half
                        } else {
                            let rising = 0.5 * amplitude * half;
                            let x = end - half;
                            let falling = amplitude * x - 0.5 * amplitude * x * x / half;
                            rising + falling
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_values() {
        let w =
            SourceWaveform::rectangular_charge(Charge::from_coulombs(1.0e-15), 1.0e-12, 10.0e-15);
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(1.005e-12) - 1.0e-15 / 10.0e-15).abs() < 1e-9);
        assert_eq!(w.value(2.0e-12), 0.0);
    }

    #[test]
    fn triangular_peak_at_midpoint() {
        let w = SourceWaveform::triangular_charge(Charge::from_coulombs(1.0e-15), 0.0, 10.0e-15);
        let peak = 2.0 * 1.0e-15 / 10.0e-15;
        assert!((w.value(5.0e-15) - peak).abs() < 1e-12);
        assert!((w.value(2.5e-15) - peak / 2.0).abs() < 1e-12);
        assert_eq!(w.value(10.1e-15), 0.0);
    }

    #[test]
    fn equal_charge_construction() {
        let q = 3.0e-16;
        let rect = SourceWaveform::rectangular_charge(Charge::from_coulombs(q), 0.0, 15.0e-15);
        let tri = SourceWaveform::triangular_charge(Charge::from_coulombs(q), 0.0, 15.0e-15);
        let horizon = 1.0e-12;
        assert!((rect.charge_over(horizon) - q).abs() / q < 1e-12);
        assert!((tri.charge_over(horizon) - q).abs() / q < 1e-12);
    }

    #[test]
    fn truncated_charge() {
        let q = 1.0e-15;
        let rect = SourceWaveform::rectangular_charge(Charge::from_coulombs(q), 0.0, 10.0e-15);
        assert!((rect.charge_over(5.0e-15) - q / 2.0).abs() / q < 1e-12);
        let tri = SourceWaveform::triangular_charge(Charge::from_coulombs(q), 0.0, 10.0e-15);
        assert!((tri.charge_over(5.0e-15) - q / 2.0).abs() / q < 1e-12);
    }

    #[test]
    fn dc_waveform() {
        let w = SourceWaveform::Dc(2.5);
        assert_eq!(w.value(0.0), 2.5);
        assert_eq!(w.value(1.0e9), 2.5);
        assert!((w.charge_over(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_zero_width() {
        let _ = SourceWaveform::rectangular_charge(Charge::from_coulombs(1.0), 0.0, 0.0);
    }

    #[test]
    fn numeric_integral_matches_analytic() {
        let tri =
            SourceWaveform::triangular_charge(Charge::from_coulombs(7.0e-16), 2.0e-15, 12.0e-15);
        let n = 40_000;
        let h = 2.0e-14 / n as f64;
        let num: f64 = (0..n).map(|i| tri.value(h * (i as f64 + 0.5)) * h).sum();
        let q = tri.charge_over(2.0e-14);
        assert!((num - q).abs() / q < 1e-3, "{num} vs {q}");
    }
}
