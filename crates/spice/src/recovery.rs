//! The convergence-recovery ladder and its structured trace.
//!
//! When a Newton solve fails, the analyses in this crate do not give up
//! immediately: they escalate through a fixed ladder of progressively more
//! invasive homotopies, each of which preserves the solution of the
//! original problem when it converges:
//!
//! 1. [`RecoveryRung::Direct`] — plain damped Newton from the caller's
//!    initial guess (preserves the basin of attraction of bistable cells).
//! 2. [`RecoveryRung::GminStepping`] — solve with a strong leak
//!    conductance to ground, then relax it geometrically to the target
//!    `gmin`, warm-starting each stage (classic SPICE gmin stepping).
//! 3. [`RecoveryRung::SourceStepping`] — ramp every voltage source from
//!    0 V to its target value in fixed fractions, warm-starting each step
//!    (classic SPICE source stepping).
//! 4. [`RecoveryRung::ReducedTimestep`] — transient-only: halve the
//!    rejected timestep, bounded by both a halving budget and an absolute
//!    `dt` floor.
//!
//! Every attempt is recorded in a [`RecoveryTrace`] so callers and logs
//! can see what was retried and why, instead of a bare failure.

use std::fmt;

/// Maximum number of attempts a [`RecoveryTrace`] stores verbatim; further
/// attempts are only counted (deep transient halving cascades would
/// otherwise grow the trace without bound).
const MAX_RECORDED_ATTEMPTS: usize = 64;

/// One rung of the convergence-recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryRung {
    /// Plain damped Newton from the caller's initial guess.
    Direct,
    /// Geometric g-min relaxation with warm starts.
    GminStepping,
    /// Supply ramp: all voltage sources scaled up from zero.
    SourceStepping,
    /// Transient timestep halving toward the `min_dt` floor.
    ReducedTimestep,
}

impl fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryRung::Direct => "direct",
            RecoveryRung::GminStepping => "gmin-stepping",
            RecoveryRung::SourceStepping => "source-stepping",
            RecoveryRung::ReducedTimestep => "reduced-timestep",
        })
    }
}

/// The outcome of one attempted rung.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryAttempt {
    /// Which rung was tried.
    pub rung: RecoveryRung,
    /// Whether the rung produced a converged solution (for
    /// [`RecoveryRung::ReducedTimestep`]: whether the rejection could be
    /// handled by halving at all).
    pub succeeded: bool,
    /// Human-readable detail: gmin stage count, ramp fraction, rejected
    /// `dt` and floor, or the underlying solver error.
    pub detail: String,
}

/// Structured record of what the solver retried and why.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryTrace {
    attempts: Vec<RecoveryAttempt>,
    suppressed: usize,
}

impl RecoveryTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one attempt (only the first [`MAX_RECORDED_ATTEMPTS`] are
    /// stored verbatim; the rest increment [`suppressed`]).
    ///
    /// [`suppressed`]: RecoveryTrace::suppressed
    pub fn record(&mut self, rung: RecoveryRung, succeeded: bool, detail: impl Into<String>) {
        if finrad_observe::enabled() {
            let outcome = if succeeded { "ok" } else { "fail" };
            finrad_observe::counter_add(
                &format!(
                    "{}{rung}.{outcome}",
                    finrad_observe::keys::SPICE_RECOVERY_RUNG_PREFIX
                ),
                1,
            );
        }
        if self.attempts.len() < MAX_RECORDED_ATTEMPTS {
            self.attempts.push(RecoveryAttempt {
                rung,
                succeeded,
                detail: detail.into(),
            });
        } else {
            self.suppressed += 1;
        }
    }

    /// The recorded attempts, in order.
    pub fn attempts(&self) -> &[RecoveryAttempt] {
        &self.attempts
    }

    /// Attempts beyond the recording cap (counted, not stored).
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// The distinct rungs attempted, in first-attempt order.
    pub fn rungs_attempted(&self) -> Vec<RecoveryRung> {
        let mut rungs = Vec::new();
        for a in &self.attempts {
            if !rungs.contains(&a.rung) {
                rungs.push(a.rung);
            }
        }
        rungs
    }

    /// Whether the solve ultimately succeeded only after at least one
    /// failed attempt (i.e. the ladder actually earned its keep).
    pub fn recovered(&self) -> bool {
        self.attempts.iter().any(|a| !a.succeeded) && self.attempts.iter().any(|a| a.succeeded)
    }

    /// Whether nothing was attempted (trivially clean solve).
    pub fn is_empty(&self) -> bool {
        self.attempts.is_empty() && self.suppressed == 0
    }
}

impl fmt::Display for RecoveryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no recovery attempted");
        }
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(
                f,
                "{}: {} ({})",
                a.rung,
                if a.succeeded { "ok" } else { "failed" },
                a.detail
            )?;
        }
        if self.suppressed > 0 {
            write!(f, " [+{} attempt(s) suppressed]", self.suppressed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_dedups_rungs() {
        let mut t = RecoveryTrace::new();
        assert!(t.is_empty());
        assert!(!t.recovered());
        t.record(RecoveryRung::Direct, false, "iter budget");
        t.record(RecoveryRung::GminStepping, false, "stage 1");
        t.record(RecoveryRung::GminStepping, true, "stage 4");
        assert_eq!(
            t.rungs_attempted(),
            vec![RecoveryRung::Direct, RecoveryRung::GminStepping]
        );
        assert!(t.recovered());
        let s = t.to_string();
        assert!(s.contains("direct: failed"));
        assert!(s.contains("gmin-stepping: ok"));
    }

    #[test]
    fn trace_caps_recorded_attempts() {
        let mut t = RecoveryTrace::new();
        for i in 0..(MAX_RECORDED_ATTEMPTS + 10) {
            t.record(RecoveryRung::ReducedTimestep, true, format!("halving {i}"));
        }
        assert_eq!(t.attempts().len(), MAX_RECORDED_ATTEMPTS);
        assert_eq!(t.suppressed(), 10);
        assert!(t.to_string().contains("suppressed"));
    }

    #[test]
    fn clean_solve_is_not_a_recovery() {
        let mut t = RecoveryTrace::new();
        t.record(RecoveryRung::Direct, true, "converged");
        assert!(!t.recovered());
    }
}
