//! Probed transient waveforms.

use crate::NodeId;
use std::io::{self, Write};

/// A probed node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Probe {
    /// The probed node.
    pub node: NodeId,
    /// Its netlist name.
    pub name: String,
}

/// Result of a transient analysis: time samples of the probed nodes plus
/// the final full node-voltage vector.
#[derive(Debug, Clone)]
pub struct TransientResult {
    probes: Vec<Probe>,
    times: Vec<f64>,
    /// `samples[p][k]` = voltage of probe `p` at time `times[k]`.
    samples: Vec<Vec<f64>>,
    final_voltages: Vec<f64>,
}

impl TransientResult {
    pub(crate) fn new(probes: Vec<Probe>) -> Self {
        let n = probes.len();
        Self {
            probes,
            times: Vec::new(),
            samples: vec![Vec::new(); n],
            final_voltages: Vec::new(),
        }
    }

    pub(crate) fn push_sample(&mut self, t: f64, values: impl Iterator<Item = f64>) {
        self.times.push(t);
        for (trace, v) in self.samples.iter_mut().zip(values) {
            trace.push(v);
        }
    }

    pub(crate) fn set_final_voltages(&mut self, v: Vec<f64>) {
        self.final_voltages = v;
    }

    /// The probes, in recording order.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// Sample times, seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage trace of probe `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn trace(&self, p: usize) -> &[f64] {
        &self.samples[p]
    }

    /// Last `(time, voltage)` sample of probe `p`, if any.
    pub fn last_sample(&self, p: usize) -> Option<(f64, f64)> {
        let t = *self.times.last()?;
        let v = *self.samples.get(p)?.last()?;
        Some((t, v))
    }

    /// Final voltage of an arbitrary node (not just probes).
    ///
    /// # Panics
    ///
    /// Panics if the node id does not belong to the simulated circuit.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        self.final_voltages[node.index()]
    }

    /// Writes the probed traces as CSV (`time,probe1,probe2,…`) to any
    /// writer — a `&mut Vec<u8>`, a file, or stdout. A mutable reference
    /// to a writer works too.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "time_s")?;
        for p in &self.probes {
            write!(w, ",{}", p.name)?;
        }
        writeln!(w)?;
        for (k, &t) in self.times.iter().enumerate() {
            write!(w, "{t:e}")?;
            for trace in &self.samples {
                write!(w, ",{:e}", trace[k])?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Extreme value reached by probe `p` over the whole run:
    /// `(min, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or no samples were recorded.
    pub fn excursion(&self, p: usize) -> (f64, f64) {
        let trace = &self.samples[p];
        assert!(!trace.is_empty(), "no samples recorded");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in trace {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    #[test]
    fn recording_and_queries() {
        let mut c = Circuit::new();
        let n = c.node("x");
        let mut r = TransientResult::new(vec![Probe {
            node: n,
            name: "x".to_owned(),
        }]);
        r.push_sample(0.0, [1.0].into_iter());
        r.push_sample(1.0, [0.5].into_iter());
        r.push_sample(2.0, [0.8].into_iter());
        r.set_final_voltages(vec![0.0, 0.8]);

        assert_eq!(r.times(), &[0.0, 1.0, 2.0]);
        assert_eq!(r.trace(0), &[1.0, 0.5, 0.8]);
        assert_eq!(r.last_sample(0), Some((2.0, 0.8)));
        assert_eq!(r.final_voltage(n), 0.8);
        assert_eq!(r.excursion(0), (0.5, 1.0));
        assert_eq!(r.probes()[0].name, "x");
    }

    #[test]
    fn csv_export_round_trips_values() {
        let mut c = Circuit::new();
        let n = c.node("q");
        let mut r = TransientResult::new(vec![Probe {
            node: n,
            name: "q".to_owned(),
        }]);
        r.push_sample(0.0, [0.8].into_iter());
        r.push_sample(1.0e-12, [0.4].into_iter());
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time_s,q");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0e0,") || lines[1].starts_with("0,"));
        assert!(lines[2].contains("4e-1"));
    }

    #[test]
    fn empty_result_is_benign() {
        let r = TransientResult::new(vec![]);
        assert!(r.times().is_empty());
        assert!(r.last_sample(0).is_none());
    }
}
