//! A nonlinear MNA transient circuit simulator.
//!
//! This crate is the workspace's substitute for the proprietary SPICE the
//! paper uses for SRAM cell characterization (Section 4). It implements
//! exactly the machinery that task needs, built on the dense LU solver in
//! `finrad-numerics`:
//!
//! * [`Circuit`] — a netlist of named nodes with resistors, capacitors, DC
//!   voltage sources, time-dependent current sources (the radiation-induced
//!   parasitic pulses) and FinFET devices from `finrad-finfet`.
//! * [`analysis::dc_operating_point`] — Newton solution of the static
//!   network with g-min stepping for robustness.
//! * [`analysis::transient`] — fixed-step backward-Euler integration with a
//!   full Newton solve per step (L-stable, the right choice for the stiff
//!   fs-pulse → ps-settling dynamics of an upset event).
//! * [`waveform::Waveform`] — probed node-voltage traces.
//!
//! # Examples
//!
//! Build and solve a resistive divider:
//!
//! ```
//! use finrad_spice::{analysis, Circuit};
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let mid = ckt.node("mid");
//! ckt.add_vsource(vin, Circuit::GROUND, 1.0);
//! ckt.add_resistor(vin, mid, 1.0e3);
//! ckt.add_resistor(mid, Circuit::GROUND, 1.0e3);
//! let op = analysis::dc_operating_point(&ckt, &analysis::NewtonOptions::default())?;
//! assert!((op.voltage(mid) - 0.5).abs() < 1e-9);
//! # Ok::<(), finrad_spice::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cancel;
mod circuit;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod recovery;
pub mod source;
pub mod sync;
pub mod waveform;

pub use cancel::{CancelScope, CancelToken};
pub use circuit::{Circuit, MosfetId, NodeId};
pub use recovery::{RecoveryAttempt, RecoveryRung, RecoveryTrace};
pub use source::{PulseShape, SourceWaveform};

use std::error::Error;
use std::fmt;

/// Errors produced by circuit construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The Newton iteration failed to converge.
    NoConvergence {
        /// What was being solved when convergence failed.
        context: String,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Last maximum voltage update, volts.
        last_delta: f64,
        /// Worst-node KCL residual `max |J·x − b|` at the final iterate,
        /// amps (NaN when the residual itself could not be evaluated).
        worst_residual: f64,
        /// Recovery rungs attempted before giving up, in order (empty when
        /// the failure surfaced without entering the recovery ladder).
        rungs: Vec<RecoveryRung>,
    },
    /// The MNA matrix was singular (usually a floating subcircuit).
    Singular {
        /// Human-readable hint.
        context: String,
    },
    /// Invalid element value or topology.
    InvalidElement(String),
    /// The solve was aborted by the thread's [`cancel::CancelToken`]
    /// (explicit cancellation or an expired wall-clock deadline). Never
    /// retried by the recovery ladder: the supervisor asked us to stop.
    Cancelled {
        /// What was being solved, plus the cancellation reason.
        context: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::NoConvergence {
                context,
                iterations,
                last_delta,
                worst_residual,
                rungs,
            } => {
                write!(
                    f,
                    "newton iteration did not converge during {context} ({iterations} iterations, \
                     last |dV| = {last_delta:.3e} V, worst residual {worst_residual:.3e} A"
                )?;
                if !rungs.is_empty() {
                    write!(f, "; rungs attempted: ")?;
                    for (i, r) in rungs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " -> ")?;
                        }
                        write!(f, "{r}")?;
                    }
                }
                write!(f, ")")
            }
            SpiceError::Singular { context } => {
                write!(f, "singular MNA system during {context}")
            }
            SpiceError::InvalidElement(msg) => write!(f, "invalid element: {msg}"),
            SpiceError::Cancelled { context } => {
                write!(f, "solve cancelled during {context}")
            }
        }
    }
}

impl Error for SpiceError {}
