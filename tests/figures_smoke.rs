//! Smoke tests of every figure-regeneration path at miniature scale: each
//! paper figure's code path must run end to end and show the right
//! qualitative shape.

use finrad::prelude::*;
use finrad_numerics::rng::Xoshiro256pp;

#[test]
fn fig2_spectra_shapes() {
    // 2(a): proton spectrum decreasing over its whole domain.
    let proton = ProtonSpectrum::sea_level();
    let es = finrad::numerics::interp::log_space(0.1, 1.0e7, 25);
    for w in es.windows(2) {
        assert!(
            proton.differential(Energy::from_mev(w[0]))
                >= proton.differential(Energy::from_mev(w[1]))
        );
    }
    // 2(b): alpha spectrum normalized to the paper's emission rate.
    let alpha = AlphaSpectrum::paper_default();
    assert!((alpha.total_flux().per_cm2_hour() - 0.001).abs() / 0.001 < 0.01);
}

#[test]
fn fig4_lut_shape() {
    let sim = FinTraversal::paper_default();
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let alpha = EhpLut::build(
        &sim,
        Particle::Alpha,
        Energy::from_mev(0.5),
        Energy::from_mev(100.0),
        6,
        4_000,
        &mut rng,
    );
    let proton = EhpLut::build(
        &sim,
        Particle::Proton,
        Energy::from_mev(0.5),
        Energy::from_mev(100.0),
        6,
        4_000,
        &mut rng,
    );
    // Alpha above proton; both decreasing over the decade 3 -> 100 MeV.
    for e_mev in [1.0, 10.0, 80.0] {
        let e = Energy::from_mev(e_mev);
        assert!(alpha.mean_pairs(e) > proton.mean_pairs(e));
    }
    assert!(alpha.mean_pairs(Energy::from_mev(3.0)) > alpha.mean_pairs(Energy::from_mev(90.0)));
    assert!(proton.mean_pairs(Energy::from_mev(3.0)) > proton.mean_pairs(Energy::from_mev(90.0)));
}

fn smoke() -> SerPipeline {
    let mut cfg = PipelineConfig::smoke_test();
    cfg.iterations_per_energy = 2_000;
    SerPipeline::new(cfg)
}

#[test]
fn fig8_pof_vs_energy_shape() {
    let pipeline = smoke();
    let vdd = Voltage::from_volts(0.8);
    let table = pipeline.build_pof_table(vdd).expect("table");
    let energies = [
        Energy::from_mev(1.0),
        Energy::from_mev(10.0),
        Energy::from_mev(100.0),
    ];
    let alpha = pipeline.pof_vs_energy_with_table(Particle::Alpha, &table, &energies);
    let proton = pipeline.pof_vs_energy_with_table(Particle::Proton, &table, &energies);
    // Alpha POF far above proton POF at each energy (Fig. 8's gap).
    for ((_, a), (_, p)) in alpha.iter().zip(&proton) {
        assert!(a.total.mean() > p.total.mean());
    }
    // Both decrease from 1 MeV to 100 MeV.
    assert!(alpha[0].1.total.mean() > alpha[2].1.total.mean());
    assert!(proton[0].1.total.mean() > proton[2].1.total.mean());
}

#[test]
fn fig9_fit_shape() {
    let pipeline = smoke();
    let low = pipeline
        .run(Particle::Alpha, Voltage::from_volts(0.7))
        .expect("low");
    let high = pipeline
        .run(Particle::Alpha, Voltage::from_volts(1.1))
        .expect("high");
    assert!(low.fit_total > high.fit_total);
}

#[test]
fn fig10_mbu_seu_shape() {
    // MBU exists for alpha and is a small fraction of SEU.
    let mut cfg = PipelineConfig::smoke_test();
    cfg.rows = 6;
    cfg.cols = 6;
    cfg.iterations_per_energy = 30_000;
    let pipeline = SerPipeline::new(cfg);
    let report = pipeline
        .run(Particle::Alpha, Voltage::from_volts(0.7))
        .expect("run");
    let ratio = report.mbu_to_seu_percent();
    assert!(ratio > 0.0, "alpha MBU must be observable: {ratio}%");
    assert!(ratio < 50.0, "MBU must stay a minority: {ratio}%");
}

#[test]
fn fig11_variation_raises_ser() {
    let vdd = Voltage::from_volts(0.8);
    let mut nominal_cfg = PipelineConfig::smoke_test();
    nominal_cfg.iterations_per_energy = 4_000;
    let mut mc_cfg = nominal_cfg.clone();
    mc_cfg.variation = Variation::MonteCarlo { samples: 40 };

    let nominal = SerPipeline::new(nominal_cfg)
        .run(Particle::Alpha, vdd)
        .expect("nominal");
    let with_pv = SerPipeline::new(mc_cfg)
        .run(Particle::Alpha, vdd)
        .expect("mc");
    assert!(
        with_pv.fit_total > nominal.fit_total,
        "variation must raise SER: {} vs {}",
        with_pv.fit_total,
        nominal.fit_total
    );
}

#[test]
fn pulse_shape_study_invariance() {
    // The paper's Section 4 finding at integration-test scale.
    let tech = Technology::soi_finfet_14nm();
    let vdd = Voltage::from_volts(0.8);
    let combo = StrikeCombo::single(StrikeTarget::I1);
    let none = std::collections::HashMap::new();
    let qcrit = |options: CharacterizeOptions| {
        CellCharacterizer::new(tech.clone(), options)
            .critical_charge(vdd, combo, &none)
            .expect("qcrit")
            .femtocoulombs()
    };
    let base = qcrit(CharacterizeOptions {
        bisect_rel_tol: 0.01,
        ..CharacterizeOptions::default()
    });
    let wide = qcrit(CharacterizeOptions {
        pulse_width: Some(1.6e-13),
        bisect_rel_tol: 0.01,
        ..CharacterizeOptions::default()
    });
    let tri = qcrit(CharacterizeOptions {
        shape: PulseShape::Triangular,
        bisect_rel_tol: 0.01,
        ..CharacterizeOptions::default()
    });
    assert!((wide - base).abs() / base < 0.15, "width: {base} vs {wide}");
    assert!((tri - base).abs() / base < 0.15, "shape: {base} vs {tri}");
}
