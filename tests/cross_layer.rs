//! Cross-crate consistency tests: the layers must agree where their
//! domains overlap.

use finrad::core::array::{DataPattern, MemoryArray};
use finrad::core::strike::{DepositMode, DirectionLaw, FlipModel, StrikeSimulator};
use finrad::prelude::*;
use finrad::transport::straggling::{deposit_exceedance, landau_params};
use finrad_numerics::rng::Xoshiro256pp;
use std::collections::HashMap;

fn quick_table(vdd_v: f64, variation: Variation) -> PofTable {
    let ch = CellCharacterizer::new(
        Technology::soi_finfet_14nm(),
        CharacterizeOptions {
            settle: 5.0e-12,
            bisect_rel_tol: 0.1,
            ..CharacterizeOptions::default()
        },
    );
    ch.build_table(Voltage::from_volts(vdd_v), variation, 3)
        .expect("characterization")
}

#[test]
fn sampled_and_expected_flip_models_agree_in_expectation() {
    // The Expected model is a variance-reduced estimator of the same
    // quantity the Sampled model estimates; on alpha at moderate energy
    // (where the Sampled model has enough events) they must agree.
    let tech = Technology::soi_finfet_14nm();
    let array = MemoryArray::build(&tech, 4, 4, DataPattern::Checkerboard);
    let table = quick_table(0.8, Variation::Nominal);
    let energy = Energy::from_mev(1.0);
    let build = |model| {
        StrikeSimulator::new(
            &array,
            FinTraversal::paper_default(),
            &table,
            DirectionLaw::CosineDown,
            DepositMode::ChordExact,
            model,
            None,
        )
    };
    let sampled = build(FlipModel::Sampled).estimate(Particle::Alpha, energy, 60_000, 5);
    let expected = build(FlipModel::Expected).estimate(Particle::Alpha, energy, 30_000, 6);
    let (s, e) = (sampled.total.mean(), expected.total.mean());
    assert!(s > 0.0 && e > 0.0, "both must see flips: {s} vs {e}");
    let rel = (s - e).abs() / e;
    assert!(rel < 0.25, "models disagree: sampled {s} vs expected {e}");
    // The Expected model's per-iteration spread never exceeds the Sampled
    // model's (it integrates one noise source out); in the saturated-alpha
    // regime the two are close, so compare with slack. The dramatic
    // variance win shows up for protons, where Sampled sees almost no
    // events at all — covered by the proton bound below.
    assert!(expected.total.stddev() <= sampled.total.stddev() * 1.1);
    let proton_expected = build(FlipModel::Expected).estimate(Particle::Proton, energy, 30_000, 7);
    assert!(
        proton_expected.total.mean() > 0.0,
        "Expected model must resolve rare proton flips"
    );
}

#[test]
fn transport_exceedance_consistent_with_pof_curve_lookup() {
    // For a deterministic deposit (scale -> 0), the analytic exceedance
    // against a PofCurve's samples must equal the curve's own CDF lookup.
    let curve = PofCurve::from_critical_charges(vec![1.0e-17, 2.0e-17, 4.0e-17]);
    let pair_energy_ev = 3.6;
    let electron = 1.602_176_634e-19;
    for q_c in [0.5e-17, 1.5e-17, 3.0e-17, 8.0e-17] {
        let deposit_ev = q_c / electron * pair_energy_ev;
        let params = finrad::transport::straggling::LandauParams {
            mean: Energy::from_ev(deposit_ev),
            scale: Energy::ZERO,
        };
        let analytic: f64 = curve
            .qcrit_samples()
            .iter()
            .map(|&qc| {
                let threshold = Energy::from_ev(qc / electron * pair_energy_ev);
                deposit_exceedance(&params, threshold, Energy::from_mev(10.0))
            })
            .sum::<f64>()
            / curve.sample_count() as f64;
        let direct = curve.pof(Charge::from_coulombs(q_c));
        assert!(
            (analytic - direct).abs() < 1e-12,
            "q={q_c}: analytic {analytic} vs direct {direct}"
        );
    }
}

#[test]
fn lut_deposits_match_traversal_statistics() {
    // The EhpLut rows must agree with fresh traversal sampling at the same
    // energy (they are built from the same kernel).
    let sim = FinTraversal::paper_default();
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let lut = EhpLut::build(
        &sim,
        Particle::Alpha,
        Energy::from_mev(0.5),
        Energy::from_mev(50.0),
        6,
        20_000,
        &mut rng,
    );
    let e = Energy::from_mev(2.0);
    let n = 20_000;
    let fresh: f64 = (0..n)
        .map(|_| sim.simulate(Particle::Alpha, e, &mut rng).pairs as f64)
        .sum::<f64>()
        / n as f64;
    let from_lut = lut.mean_pairs(e);
    let rel = (fresh - from_lut).abs() / from_lut;
    assert!(rel < 0.1, "LUT {from_lut} vs fresh {fresh}");
}

#[test]
fn landau_params_mean_matches_stopping_model() {
    let model = StoppingModel::silicon();
    let e = Energy::from_mev(3.0);
    let chord = Length::from_nm(25.0);
    let params = landau_params(&model, Particle::Proton, e, chord);
    let mean = model.mean_energy_loss(Particle::Proton, e, chord);
    assert_eq!(params.mean, mean);
    assert!(params.scale.ev() > 0.0);
}

#[test]
fn characterized_qcrit_flips_in_direct_simulation() {
    // Round trip: the critical charge extracted by the characterizer must
    // actually flip (just above) and hold (just below) in a direct
    // simulation of the same cell.
    let ch = CellCharacterizer::new(
        Technology::soi_finfet_14nm(),
        CharacterizeOptions {
            settle: 5.0e-12,
            bisect_rel_tol: 0.02,
            ..CharacterizeOptions::default()
        },
    );
    let vdd = Voltage::from_volts(0.8);
    let combo = StrikeCombo::single(StrikeTarget::I2);
    let none = HashMap::new();
    let qcrit = ch.critical_charge(vdd, combo, &none).expect("qcrit");
    assert!(ch
        .flips(vdd, combo, qcrit * 1.1, &none)
        .expect("above flips"));
    assert!(!ch
        .flips(vdd, combo, qcrit * 0.9, &none)
        .expect("below holds"));
}

#[test]
fn variation_table_pof_bounds_nominal() {
    // Variation spreads Qcrit around the nominal value, so at charges well
    // below (above) nominal Qcrit the variation POF is >= 0 (<= 1) and
    // crosses 0.5 near the nominal threshold.
    let nominal = quick_table(0.8, Variation::Nominal);
    let mc = quick_table(0.8, Variation::MonteCarlo { samples: 24 });
    let combo = StrikeCombo::single(StrikeTarget::I1);
    let q_nom = nominal.curve(combo).expect("characterized").median_qcrit();
    let pof_at_nominal = mc.pof(combo, q_nom).expect("characterized");
    assert!(
        pof_at_nominal > 0.05 && pof_at_nominal < 0.95,
        "pof at nominal qcrit: {pof_at_nominal}"
    );
}
