//! Integration tests for the supervised campaign service: the threaded
//! job-queue daemon must produce reports bit-identical to the in-process
//! [`CampaignRunner`], serve duplicate submissions from its result cache
//! without re-invoking SPICE, coalesce concurrent duplicates onto one
//! in-flight job, enforce per-job wall-clock deadlines as typed errors,
//! and drain gracefully.
//!
//! See `docs/service.md` for the architecture these tests pin down.

use finrad::core::campaign::{CampaignConfig, CampaignRunner, CampaignStatus};
use finrad::prelude::*;
use finrad_observe::keys;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Reduced config: full smoke pipeline, fewer MC iterations per bin.
fn tiny_pipeline() -> PipelineConfig {
    let mut c = PipelineConfig::smoke_test();
    c.iterations_per_energy = 100;
    c
}

fn vdd() -> Voltage {
    Voltage::from_volts(0.8)
}

fn tiny_campaign() -> CampaignConfig {
    CampaignConfig::new(tiny_pipeline(), Particle::Alpha, vdd())
}

/// One recorder per process, shared by every test in this binary.
fn recorder() -> &'static finrad_observe::InMemoryRecorder {
    static RECORDER: OnceLock<&'static finrad_observe::InMemoryRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| finrad_observe::install_in_memory().expect("first install"))
}

/// Counter-delta assertions need the process-wide recorder to themselves:
/// serialize every test in this binary.
fn metrics_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn service_report_is_bit_identical_to_campaign_runner() {
    let _serial = metrics_lock();
    let _ = recorder();

    // Ground truth: the single-threaded in-process runner.
    let truth = match CampaignRunner::new(tiny_campaign()).run().expect("runner") {
        CampaignStatus::Complete(report) => report,
        CampaignStatus::Paused { .. } => panic!("unbounded run paused"),
    };

    // The same campaign through a 3-worker service: bins are sharded
    // across threads and may compute in any order, but per-bin seeds and
    // in-order integration make the report bit-identical.
    let service = CampaignService::start(ServiceConfig {
        workers: 3,
        ..ServiceConfig::default()
    });
    let job = service.submit(tiny_campaign());
    let report = service.wait(job).expect("service job");

    assert_eq!(report.fit.total.to_bits(), truth.fit.total.to_bits());
    assert_eq!(report.fit.seu.to_bits(), truth.fit.seu.to_bits());
    assert_eq!(report.fit.mbu.to_bits(), truth.fit.mbu.to_bits());
    assert_eq!(report.outcomes.len(), truth.outcomes.len());
    assert!(report.coverage.is_complete());
    assert_eq!(service.status(job), JobStatus::Done);
    assert!(service.dead_letters().is_empty());
}

#[test]
fn identical_resubmission_is_served_from_cache_without_spice() {
    let _serial = metrics_lock();
    let recorder = recorder();

    let service = CampaignService::start(ServiceConfig::default());
    let first = service.submit(tiny_campaign());
    let first_report = service.wait(first).expect("first job");

    // Baseline after the first job: any further SPICE solve is a cache
    // miss the service failed to detect.
    let before = recorder.snapshot();
    let solves_before = before.counter(keys::SPICE_NEWTON_SOLVES);
    let hits_before = before.counter(keys::SERVICE_CACHE_HITS);

    let second = service.submit(tiny_campaign());
    let second_report = service.wait(second).expect("second job");

    let after = recorder.snapshot();
    assert_eq!(
        after.counter(keys::SPICE_NEWTON_SOLVES),
        solves_before,
        "cache hit must not re-invoke the SPICE solver"
    );
    assert_eq!(after.counter(keys::SERVICE_CACHE_HITS), hits_before + 1);
    assert_eq!(
        second_report.fit.total.to_bits(),
        first_report.fit.total.to_bits()
    );
    assert_eq!(service.status(second), JobStatus::Done);
}

#[test]
fn concurrent_identical_submissions_coalesce_onto_one_job() {
    let _serial = metrics_lock();
    let recorder = recorder();
    let before = recorder.snapshot().counter(keys::SERVICE_JOBS_COALESCED);

    let service = CampaignService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    // Submitted back-to-back: the second lands while the first is still
    // in its prepare step, so it aliases the in-flight job instead of
    // queueing a duplicate campaign.
    let a = service.submit(tiny_campaign());
    let b = service.submit(tiny_campaign());
    assert_ne!(a, b, "every submission gets its own id");

    let ra = service.wait(a).expect("job a");
    let rb = service.wait(b).expect("job b");
    assert_eq!(ra.fit.total.to_bits(), rb.fit.total.to_bits());

    let after = recorder.snapshot().counter(keys::SERVICE_JOBS_COALESCED);
    assert_eq!(after, before + 1, "second submission coalesced");
}

#[test]
fn deadline_exceeded_is_a_typed_failure_not_a_hang() {
    let _serial = metrics_lock();
    let recorder = recorder();
    let before = recorder
        .snapshot()
        .counter(keys::SERVICE_DEADLINE_CANCELLATIONS);

    // 1 ms is far below the characterization cost of even the smoke
    // pipeline: the cancellation token's deadline fires inside the Newton
    // solver and surfaces as a typed job failure.
    let strict = CampaignService::start(ServiceConfig {
        workers: 1,
        job_deadline: Some(Duration::from_millis(1)),
        ..ServiceConfig::default()
    });
    let job = strict.submit(tiny_campaign());
    assert!(matches!(strict.wait(job), Err(JobError::DeadlineExceeded)));
    assert_eq!(strict.status(job), JobStatus::Done);
    let after = recorder
        .snapshot()
        .counter(keys::SERVICE_DEADLINE_CANCELLATIONS);
    assert!(after > before, "deadline cancellation must be counted");
    drop(strict);

    // The same config under a fresh service with no deadline completes —
    // the failure above was the budget, not the campaign.
    let relaxed = CampaignService::start(ServiceConfig::default());
    let job = relaxed.submit(tiny_campaign());
    let report = relaxed.wait(job).expect("no-deadline job");
    assert!(report.coverage.is_complete());
}

#[test]
fn drain_finishes_queued_jobs_and_rejects_new_ones() {
    let _serial = metrics_lock();
    let _ = recorder();

    let service = CampaignService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    // Two distinct campaigns (different seeds → different fingerprints).
    let mut other = tiny_pipeline();
    other.seed ^= 1;
    let a = service.submit(tiny_campaign());
    let b = service.submit(CampaignConfig::new(other, Particle::Alpha, vdd()));

    // Drain blocks until both jobs are terminal; their results stay
    // queryable afterwards.
    service.drain();
    assert_eq!(service.status(a), JobStatus::Done);
    assert_eq!(service.status(b), JobStatus::Done);
    let ra = service.wait(a).expect("job a");
    let rb = service.wait(b).expect("job b");
    assert!(ra.coverage.is_complete());
    assert!(rb.coverage.is_complete());
    assert_ne!(
        ra.fit.total.to_bits(),
        rb.fit.total.to_bits(),
        "different seeds must not collide in the cache"
    );

    // Post-drain submissions are rejected with a typed error.
    let late = service.submit(tiny_campaign());
    assert!(matches!(service.wait(late), Err(JobError::Draining)));
}
