//! Determinism-under-faults suite for the supervised campaign service:
//! crashed bins are retried on a reproducible backoff schedule and the
//! recovered report is bit-identical to an unfaulted run; poison bins are
//! quarantined to the dead-letter list without sinking the job; stalls
//! trip the wall-clock deadline as a typed error; checkpoint-write
//! failures at completion are loud; and a daemon killed mid-job flushes a
//! partial checkpoint a successor resumes bit-identically.
//!
//! Run with `cargo test --features fault-injection --test service_supervision`.
//! Both injectors (solver-level and service-level) are process-global, so
//! every test serializes on [`FAULT_LOCK`].
#![cfg(feature = "fault-injection")]

use finrad::core::campaign::{CampaignConfig, CampaignReport, CampaignRunner, CampaignStatus};
use finrad::core::service::fault as service_fault;
use finrad::prelude::*;
use finrad::spice::fault as spice_fault;
use finrad_observe::keys;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Takes the global injector lock and guarantees both injectors are
/// disarmed on exit, even when the test body panics.
fn fault_guard() -> (MutexGuard<'static, ()>, DisarmOnDrop) {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    spice_fault::disarm();
    service_fault::disarm();
    (guard, DisarmOnDrop)
}

struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        spice_fault::disarm();
        service_fault::disarm();
    }
}

/// One recorder per process, shared by every test in this binary.
fn recorder() -> &'static finrad_observe::InMemoryRecorder {
    static RECORDER: OnceLock<&'static finrad_observe::InMemoryRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| finrad_observe::install_in_memory().expect("first install"))
}

fn tiny_pipeline() -> PipelineConfig {
    let mut c = PipelineConfig::smoke_test();
    c.iterations_per_energy = 100;
    c
}

fn vdd() -> Voltage {
    Voltage::from_volts(0.8)
}

fn campaign_config() -> CampaignConfig {
    CampaignConfig::new(tiny_pipeline(), Particle::Alpha, vdd())
}

/// The unfaulted baseline report, computed once (callers hold FAULT_LOCK).
fn plain_report() -> &'static CampaignReport {
    static PLAIN: OnceLock<CampaignReport> = OnceLock::new();
    PLAIN.get_or_init(|| {
        match CampaignRunner::new(campaign_config())
            .run()
            .expect("baseline campaign")
        {
            CampaignStatus::Complete(report) => *report,
            CampaignStatus::Paused { .. } => unreachable!("unbounded run cannot pause"),
        }
    })
}

/// A per-test temp path, removed on drop so failures don't leak state
/// into reruns.
struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("finrad-svc-{}-{name}", std::process::id()));
        let _ = fs::remove_file(&p);
        TempCkpt(p)
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

#[test]
fn crashed_bin_is_retried_and_report_is_bit_identical() {
    let _g = fault_guard();
    let recorder = recorder();
    let truth = plain_report();
    let retries_before = recorder.snapshot().counter(keys::SERVICE_BIN_RETRIES);

    // Bin 2 panics on attempts 0 and 1, then succeeds on attempt 2 —
    // inside the retry budget, so the supervision envelope recovers it
    // and the fault leaves no trace in the numbers.
    let mut cfg = campaign_config();
    cfg.fault_plan.panic_bins = vec![(2, 2)];
    let service = CampaignService::start(ServiceConfig {
        workers: 2,
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        ..ServiceConfig::default()
    });
    let job = service.submit(cfg);
    let report = service.wait(job).expect("retried job completes");

    assert_eq!(report.fit.total.to_bits(), truth.fit.total.to_bits());
    assert_eq!(report.fit.seu.to_bits(), truth.fit.seu.to_bits());
    assert_eq!(report.fit.mbu.to_bits(), truth.fit.mbu.to_bits());
    assert!(report.coverage.is_complete());
    assert!(service.dead_letters().is_empty());
    let retries_after = recorder.snapshot().counter(keys::SERVICE_BIN_RETRIES);
    assert_eq!(retries_after, retries_before + 2, "one retry per panic");
}

#[test]
fn poison_bin_is_quarantined_to_the_dead_letter_list() {
    let _g = fault_guard();
    let recorder = recorder();
    let quarantined_before = recorder.snapshot().counter(keys::SERVICE_BINS_QUARANTINED);

    // Bin 1 panics on every attempt: after max_retries + 1 tries it is
    // quarantined, and the job completes with degraded coverage instead
    // of hanging or sinking the worker pool.
    let mut cfg = campaign_config();
    cfg.fault_plan.panic_bins = vec![(1, u32::MAX)];
    let service = CampaignService::start(ServiceConfig {
        workers: 2,
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        ..ServiceConfig::default()
    });
    let job = service.submit(cfg);
    let report = service.wait(job).expect("degraded job still completes");

    assert!(!report.coverage.is_complete());
    assert_eq!(report.coverage.failed_bins, 1);
    let letters = service.dead_letters();
    assert_eq!(letters.len(), 1);
    assert_eq!(letters[0].job, job);
    assert_eq!(letters[0].bin, 1);
    assert_eq!(letters[0].attempts, 3, "first run plus two retries");
    assert!(letters[0].error.contains("injected fault"));
    assert_eq!(
        recorder.snapshot().counter(keys::SERVICE_BINS_QUARANTINED),
        quarantined_before + 1
    );

    // The pool survived the poison job: a clean campaign on the same
    // service still produces the exact baseline.
    let clean = service.submit(campaign_config());
    let clean_report = service.wait(clean).expect("clean job after poison");
    assert_eq!(
        clean_report.fit.total.to_bits(),
        plain_report().fit.total.to_bits()
    );
}

#[test]
fn backoff_schedule_is_reproducible_from_the_campaign_seed() {
    let _g = fault_guard();
    let seed = tiny_pipeline().seed;
    let base = Duration::from_millis(5);
    let cap = Duration::from_millis(100);

    for bin in 0..5 {
        for attempt in 0..4 {
            let a = backoff_schedule(seed, bin, attempt, base, cap);
            let b = backoff_schedule(seed, bin, attempt, base, cap);
            assert_eq!(a, b, "bin {bin} attempt {attempt} must be pure");
            assert!(a <= cap, "bin {bin} attempt {attempt} exceeds the cap");
            assert!(a >= base.min(cap), "delay below base");
        }
    }
    // Different campaign seeds de-correlate the jitter.
    let a = backoff_schedule(seed, 0, 0, base, cap);
    let b = backoff_schedule(seed ^ 1, 0, 0, base, cap);
    assert_ne!(a, b, "jitter must depend on the campaign seed");
}

#[test]
fn solver_stall_trips_the_job_deadline_as_a_typed_error() {
    let _g = fault_guard();
    let _ = recorder();

    // The very first Newton solve stalls for 400 ms against a 50 ms job
    // deadline: the cancellation token fires inside the solver and the
    // job fails with the typed deadline error instead of hanging.
    spice_fault::arm_stall(0, 1, Duration::from_millis(400));
    let strict = CampaignService::start(ServiceConfig {
        workers: 1,
        job_deadline: Some(Duration::from_millis(50)),
        ..ServiceConfig::default()
    });
    let job = strict.submit(campaign_config());
    assert!(matches!(strict.wait(job), Err(JobError::DeadlineExceeded)));
    drop(strict);

    // Injector drained (count = 1): the same campaign on a fresh
    // no-deadline service completes with baseline bits.
    let relaxed = CampaignService::start(ServiceConfig::default());
    let job = relaxed.submit(campaign_config());
    let report = relaxed.wait(job).expect("job after stall drained");
    assert_eq!(
        report.fit.total.to_bits(),
        plain_report().fit.total.to_bits()
    );
}

#[test]
fn checkpoint_write_failure_at_completion_is_loud_and_not_cached() {
    let _g = fault_guard();
    let recorder = recorder();
    let ckpt = TempCkpt::new("flushfail");

    let mut cfg = campaign_config();
    cfg.checkpoint_path = Some(ckpt.0.clone());
    let service = CampaignService::start(ServiceConfig::default());

    service_fault::arm_checkpoint_failure(1);
    let job = service.submit(cfg.clone());
    match service.wait(job) {
        Err(JobError::CheckpointFlush(msg)) => {
            assert!(msg.contains("injected"), "unexpected flush error: {msg}")
        }
        other => panic!("expected CheckpointFlush, got {other:?}"),
    }

    // The failed job must not poison the result cache: resubmitting the
    // identical config recomputes (cache miss) and succeeds.
    service_fault::disarm();
    let hits_before = recorder.snapshot().counter(keys::SERVICE_CACHE_HITS);
    let retry = service.submit(cfg);
    let report = service.wait(retry).expect("resubmission succeeds");
    assert_eq!(
        report.fit.total.to_bits(),
        plain_report().fit.total.to_bits()
    );
    assert_eq!(
        recorder.snapshot().counter(keys::SERVICE_CACHE_HITS),
        hits_before,
        "a failed job must not be served from the cache"
    );
}

#[test]
fn killed_daemon_flushes_partial_checkpoint_and_resume_is_bit_identical() {
    let _g = fault_guard();
    let recorder = recorder();
    let ckpt = TempCkpt::new("killresume");
    let truth = plain_report();

    let mut cfg = campaign_config();
    cfg.checkpoint_path = Some(ckpt.0.clone());

    // Slow every bin down so the kill window is wide, then poll until the
    // job is mid-flight: some bins done, some not.
    service_fault::arm_bin_delay(Duration::from_millis(150));
    let flushes_before = recorder.snapshot().counter(keys::SERVICE_DRAIN_FLUSHES);
    let first = CampaignService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let job = first.submit(cfg.clone());
    let mut observed_partial = None;
    for _ in 0..2000 {
        if let JobStatus::Running {
            completed_bins,
            total_bins,
        } = first.status(job)
        {
            if completed_bins >= 1 && completed_bins < total_bins {
                observed_partial = Some((completed_bins, total_bins));
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let (done, total) = observed_partial.expect("job never reached a partial state");
    assert!(done < total);

    // Kill the daemon mid-job: the interrupted job gets its partial
    // tallies flushed to the checkpoint and resolves to a typed error.
    first.shutdown_now();
    assert!(matches!(first.wait(job), Err(JobError::Draining)));
    assert!(ckpt.0.exists(), "shutdown must flush a partial checkpoint");
    assert!(recorder.snapshot().counter(keys::SERVICE_DRAIN_FLUSHES) > flushes_before);
    drop(first);

    // A successor daemon resumes from the flushed checkpoint and lands on
    // bits identical to an uninterrupted run.
    service_fault::disarm();
    let second = CampaignService::start(ServiceConfig::default());
    let resumed = second.submit(cfg);
    let report = second.wait(resumed).expect("resumed job completes");
    assert_eq!(report.fit.total.to_bits(), truth.fit.total.to_bits());
    assert_eq!(report.fit.seu.to_bits(), truth.fit.seu.to_bits());
    assert_eq!(report.fit.mbu.to_bits(), truth.fit.mbu.to_bits());
    assert!(report.coverage.is_complete());
}
