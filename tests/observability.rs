//! Integration test for the observability layer: a smoke-scale pipeline
//! run with the in-memory recorder installed must populate the solver and
//! Monte-Carlo metrics end-to-end (device LUT → SPICE characterization →
//! array strike MC). See `docs/observability.md` for the key catalogue.

use finrad_core::pipeline::{PipelineConfig, SerPipeline};
use finrad_observe::keys;
use finrad_units::{Particle, Voltage};

#[test]
fn smoke_pipeline_populates_solver_and_mc_metrics() {
    // One recorder per process: this is the only test in this binary that
    // installs one.
    let recorder = finrad_observe::install_in_memory().expect("first install");

    let pipeline = SerPipeline::new(PipelineConfig::smoke_test());
    let report = pipeline
        .run(Particle::Alpha, Voltage::from_volts(0.8))
        .expect("smoke run succeeds");
    assert!(report.fit_total.is_finite());

    let snap = recorder.snapshot();

    // Circuit layer: the characterization bisections drive Newton solves.
    let newton = snap.counter(keys::SPICE_NEWTON_ITERATIONS);
    assert!(newton > 0, "expected Newton iterations, got {newton}");
    assert!(snap.counter(keys::SPICE_NEWTON_SOLVES) > 0);
    assert!(snap.counter(keys::SRAM_BISECTION_STEPS) > 0);
    assert_eq!(
        snap.counter(keys::SRAM_COMBOS),
        7,
        "all seven strike combos"
    );

    // Array layer: every requested MC iteration is accounted for.
    let cfg = PipelineConfig::smoke_test();
    assert_eq!(
        snap.counter(keys::STRIKE_ITERATIONS),
        cfg.iterations_per_energy * cfg.energy_bins as u64
    );
    assert_eq!(snap.counter(keys::STRIKE_QUARANTINED), 0);

    // Throughput histogram: one observation per energy bin, positive mean.
    let throughput = snap
        .histogram(keys::STRIKE_ITERS_PER_SEC)
        .expect("MC throughput recorded");
    assert_eq!(throughput.count, cfg.energy_bins as u64);
    assert!(
        throughput.mean() > 0.0,
        "MC throughput must be non-zero, got {}",
        throughput.mean()
    );

    // Wall-time histograms exist and are non-negative.
    let combo_seconds = snap
        .histogram(keys::SRAM_COMBO_SECONDS)
        .expect("per-combo timing recorded");
    assert_eq!(combo_seconds.count, 7);
    assert!(combo_seconds.sum >= 0.0);
}
