//! End-to-end integration tests of the full cross-layer pipeline.

use finrad::prelude::*;

fn smoke_pipeline() -> SerPipeline {
    SerPipeline::new(PipelineConfig::smoke_test())
}

#[test]
fn full_pipeline_produces_consistent_report() {
    let pipeline = smoke_pipeline();
    let report = pipeline
        .run(Particle::Alpha, Voltage::from_volts(0.8))
        .expect("pipeline run");
    assert!(report.fit_total.is_finite());
    assert!(report.fit_total >= 0.0);
    // The decomposition is exact.
    assert!(
        (report.fit_seu + report.fit_mbu - report.fit_total).abs()
            <= 1e-9 * report.fit_total.max(1.0)
    );
    // Every bin has a POF in [0, 1] and non-negative flux.
    for bin in &report.bins {
        assert!((0.0..=1.0).contains(&bin.pof_total));
        assert!(bin.pof_seu <= bin.pof_total + 1e-12);
        assert!(bin.spectrum.integral_flux.per_m2_second() >= 0.0);
    }
}

#[test]
fn deterministic_given_seed() {
    // Two full runs from the same seed must agree to the last bit — not
    // approximately: the threaded MC uses per-worker seed streams and
    // ordered (BTreeMap) per-cell accumulation precisely so that the FIT
    // rate is a pure function of (config, seed).
    let a = smoke_pipeline()
        .run(Particle::Alpha, Voltage::from_volts(0.8))
        .expect("run a");
    let b = smoke_pipeline()
        .run(Particle::Alpha, Voltage::from_volts(0.8))
        .expect("run b");
    assert_eq!(a.fit_total.to_bits(), b.fit_total.to_bits());
    assert_eq!(a.fit_seu.to_bits(), b.fit_seu.to_bits());
    assert_eq!(a.fit_mbu.to_bits(), b.fit_mbu.to_bits());
    assert_eq!(a.bins.len(), b.bins.len());
    for (ba, bb) in a.bins.iter().zip(&b.bins) {
        assert_eq!(ba.pof_total.to_bits(), bb.pof_total.to_bits());
        assert_eq!(ba.pof_seu.to_bits(), bb.pof_seu.to_bits());
        assert_eq!(ba.pof_mbu.to_bits(), bb.pof_mbu.to_bits());
    }
}

#[test]
fn different_seed_changes_estimate_slightly() {
    let a = smoke_pipeline()
        .run(Particle::Alpha, Voltage::from_volts(0.8))
        .expect("run a");
    let mut cfg = PipelineConfig::smoke_test();
    cfg.seed ^= 0xDEAD_BEEF;
    let b = SerPipeline::new(cfg)
        .run(Particle::Alpha, Voltage::from_volts(0.8))
        .expect("run b");
    // Same physics, different MC noise: close but not identical.
    assert_ne!(a.fit_total, b.fit_total);
    if a.fit_total > 0.0 {
        let rel = (a.fit_total - b.fit_total).abs() / a.fit_total;
        assert!(rel < 1.0, "estimates differ wildly: {rel}");
    }
}

#[test]
fn paper_headline_low_vdd_raises_both_species() {
    let mut cfg = PipelineConfig::smoke_test();
    cfg.iterations_per_energy = 2_000;
    let pipeline = SerPipeline::new(cfg);
    for particle in Particle::ALL {
        let low = pipeline
            .run(particle, Voltage::from_volts(0.7))
            .expect("low vdd");
        let high = pipeline
            .run(particle, Voltage::from_volts(1.1))
            .expect("high vdd");
        assert!(
            low.fit_total > high.fit_total,
            "{particle}: FIT(0.7) = {} !> FIT(1.1) = {}",
            low.fit_total,
            high.fit_total
        );
    }
}

#[test]
fn paper_headline_proton_falls_faster_with_vdd() {
    let mut cfg = PipelineConfig::smoke_test();
    cfg.iterations_per_energy = 4_000;
    let pipeline = SerPipeline::new(cfg);
    let ratio = |particle| {
        let low = pipeline
            .run(particle, Voltage::from_volts(0.7))
            .expect("low");
        let high = pipeline
            .run(particle, Voltage::from_volts(1.1))
            .expect("high");
        low.fit_total / high.fit_total.max(1e-300)
    };
    let proton_fall = ratio(Particle::Proton);
    let alpha_fall = ratio(Particle::Alpha);
    assert!(
        proton_fall > alpha_fall,
        "proton fall {proton_fall} should exceed alpha fall {alpha_fall}"
    );
}

#[test]
fn reusing_pof_table_matches_fresh_run() {
    let pipeline = smoke_pipeline();
    let vdd = Voltage::from_volts(0.8);
    let table = pipeline.build_pof_table(vdd).expect("table");
    let a = pipeline.run_with_table(Particle::Proton, vdd, &table);
    let b = pipeline.run(Particle::Proton, vdd).expect("fresh");
    assert_eq!(a.fit_total, b.fit_total);
}

#[test]
fn array_pattern_affects_geometry_but_not_sanity() {
    for pattern in [
        DataPattern::Checkerboard,
        DataPattern::AllOnes,
        DataPattern::AllZeros,
    ] {
        let mut cfg = PipelineConfig::smoke_test();
        cfg.pattern = pattern;
        let report = SerPipeline::new(cfg)
            .run(Particle::Alpha, Voltage::from_volts(0.8))
            .expect("run");
        assert!(report.fit_total.is_finite() && report.fit_total >= 0.0);
    }
}
