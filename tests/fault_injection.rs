//! Deterministic fault-injection suite: every engineered degradation path
//! must recover or fail loudly with a typed error — never a panic, never
//! a silently-wrong FIT.
//!
//! Run with `cargo test --features fault-injection --test fault_injection`.
//! The solver-level injector is process-global, so every test serializes
//! on [`FAULT_LOCK`] (poison-tolerant: a failed test must not cascade).
#![cfg(feature = "fault-injection")]

use finrad::core::campaign::{
    corrupt_checkpoint, CampaignConfig, CampaignError, CampaignReport, CampaignRunner,
    CampaignStatus,
};
use finrad::core::checkpoint::{config_fingerprint, BinRecord, Checkpoint, CheckpointError};
use finrad::core::CoreError;
use finrad::prelude::*;
use finrad::spice::analysis::{
    dc_operating_point_with_recovery, transient_with_trace, NewtonOptions, Phase, TimeStepPlan,
};
use finrad::spice::{fault, Circuit, RecoveryRung, SpiceError};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Takes the global injector lock and guarantees the injector is disarmed
/// on exit, even when the test body panics.
fn fault_guard() -> (MutexGuard<'static, ()>, DisarmOnDrop) {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm();
    (guard, DisarmOnDrop)
}

struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn tiny_pipeline() -> PipelineConfig {
    let mut c = PipelineConfig::smoke_test();
    c.iterations_per_energy = 100;
    c
}

fn vdd() -> Voltage {
    Voltage::from_volts(0.8)
}

fn campaign_config() -> CampaignConfig {
    CampaignConfig::new(tiny_pipeline(), Particle::Alpha, vdd())
}

fn run_complete(cfg: CampaignConfig) -> Result<CampaignReport, CampaignError> {
    CampaignRunner::new(cfg).run().map(|status| match status {
        CampaignStatus::Complete(report) => *report,
        CampaignStatus::Paused { .. } => unreachable!("unbounded run cannot pause"),
    })
}

/// The unpoisoned baseline report, computed once (callers hold FAULT_LOCK).
fn plain_report() -> &'static CampaignReport {
    static PLAIN: OnceLock<CampaignReport> = OnceLock::new();
    PLAIN.get_or_init(|| run_complete(campaign_config()).expect("baseline campaign"))
}

fn divider() -> (Circuit, finrad::spice::NodeId) {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let mid = ckt.node("mid");
    ckt.add_vsource(vin, Circuit::GROUND, 1.2);
    ckt.add_resistor(vin, mid, 2.0e3);
    ckt.add_resistor(mid, Circuit::GROUND, 1.0e3);
    (ckt, mid)
}

#[test]
fn single_injected_failure_recovers_via_gmin_ladder() {
    let _g = fault_guard();
    let (ckt, mid) = divider();
    let before = fault::injected_count();
    fault::arm_nonconvergence(0, 1);
    let (op, trace) =
        dc_operating_point_with_recovery(&ckt, &NewtonOptions::default(), &HashMap::new())
            .expect("ladder must recover from a single transient fault");
    assert_eq!(fault::injected_count(), before + 1);
    assert!(
        (op.voltage(mid) - 0.4).abs() < 1e-9,
        "recovered answer must be correct"
    );
    assert!(
        trace.recovered(),
        "trace must show failure then recovery: {trace}"
    );
    let rungs = trace.rungs_attempted();
    assert!(rungs.contains(&RecoveryRung::Direct));
    assert!(rungs.contains(&RecoveryRung::GminStepping));
}

#[test]
fn persistent_failure_exhausts_every_rung_loudly() {
    let _g = fault_guard();
    let (ckt, _mid) = divider();
    fault::arm_nonconvergence(0, u64::MAX);
    let err = dc_operating_point_with_recovery(&ckt, &NewtonOptions::default(), &HashMap::new())
        .expect_err("persistent non-convergence cannot succeed");
    match err {
        SpiceError::NoConvergence { rungs, .. } => {
            assert!(rungs.contains(&RecoveryRung::Direct), "rungs: {rungs:?}");
            assert!(
                rungs.contains(&RecoveryRung::GminStepping),
                "rungs: {rungs:?}"
            );
            assert!(
                rungs.contains(&RecoveryRung::SourceStepping),
                "rungs: {rungs:?}"
            );
        }
        other => panic!("expected NoConvergence, got {other}"),
    }
}

#[test]
fn transient_timestep_halving_recovers_and_is_traced() {
    let _g = fault_guard();
    // 1 kΩ || 1 pF discharging from 1 V.
    let mut ckt = Circuit::new();
    let n = ckt.node("n");
    ckt.add_resistor(n, Circuit::GROUND, 1.0e3);
    ckt.add_capacitor(n, Circuit::GROUND, 1.0e-12);
    let plan = TimeStepPlan::new(vec![Phase {
        duration: 1.0e-9,
        dt: 1.0e-10,
    }]);
    let mut ic = HashMap::new();
    ic.insert(n, 1.0);

    fault::arm_nonconvergence(0, 1);
    let (res, trace) = transient_with_trace(&ckt, &plan, &ic, &[n], &NewtonOptions::default())
        .expect("one rejected step must be absorbed by halving");
    assert!(trace
        .rungs_attempted()
        .contains(&RecoveryRung::ReducedTimestep));
    let (_t, v_end) = res.last_sample(0).expect("samples recorded");
    assert!((v_end - (-1.0f64).exp()).abs() < 5e-2, "v_end {v_end}");
}

#[test]
fn transient_halving_floor_fails_loudly_with_diagnostics() {
    let _g = fault_guard();
    let mut ckt = Circuit::new();
    let n = ckt.node("n");
    ckt.add_resistor(n, Circuit::GROUND, 1.0e3);
    ckt.add_capacitor(n, Circuit::GROUND, 1.0e-12);
    let plan = TimeStepPlan::new(vec![Phase {
        duration: 1.0e-10,
        dt: 1.0e-10,
    }]);

    fault::arm_nonconvergence(0, u64::MAX);
    let err = transient_with_trace(
        &ckt,
        &plan,
        &HashMap::new(),
        &[n],
        &NewtonOptions::default(),
    )
    .expect_err("persistent rejection must hit the halving bound");
    match err {
        SpiceError::NoConvergence { context, rungs, .. } => {
            assert!(
                rungs.contains(&RecoveryRung::ReducedTimestep),
                "rungs: {rungs:?}"
            );
            assert!(
                context.contains("halving") && context.contains("dt ="),
                "diagnostics missing from context: {context}"
            );
        }
        other => panic!("expected NoConvergence, got {other}"),
    }
}

#[test]
fn campaign_characterization_failure_is_typed_not_a_panic() {
    let _g = fault_guard();
    fault::arm_nonconvergence(0, u64::MAX);
    let err =
        run_complete(campaign_config()).expect_err("characterization cannot survive a dead solver");
    match err {
        CampaignError::Pipeline(CoreError::Characterization(SpiceError::NoConvergence {
            ..
        })) => {}
        other => panic!("expected typed characterization failure, got {other}"),
    }
}

#[test]
fn poisoned_samples_are_quarantined_and_fit_stays_bit_identical() {
    let _g = fault_guard();
    let plain = plain_report();
    let mut cfg = campaign_config();
    cfg.fault_plan.poison_samples = vec![1, 3];
    let poisoned = run_complete(cfg).expect("poisoned run completes");
    assert_eq!(
        poisoned.coverage.quarantined_samples,
        plain.coverage.quarantined_samples + 2,
        "each injected NaN iteration must be counted"
    );
    // Quarantine means the NaN never reached the accumulators: the means,
    // and therefore the FIT, are the same bits as the clean run.
    assert_eq!(poisoned.fit.total.to_bits(), plain.fit.total.to_bits());
    assert_eq!(poisoned.fit.seu.to_bits(), plain.fit.seu.to_bits());
    assert_eq!(poisoned.fit.mbu.to_bits(), plain.fit.mbu.to_bits());
}

#[test]
fn failed_bin_degrades_coverage_instead_of_aborting() {
    let _g = fault_guard();
    let plain = plain_report();
    let mut cfg = campaign_config();
    cfg.fault_plan.fail_bins = vec![2];
    let report = run_complete(cfg).expect("campaign must survive one dead bin");
    assert_eq!(report.coverage.total_bins, 5);
    assert_eq!(report.coverage.ok_bins, 4);
    assert_eq!(report.coverage.failed_bins, 1);
    assert!(!report.coverage.is_complete());
    assert!(report.coverage.flux_fraction < 1.0);
    assert!(matches!(
        report.outcomes[2],
        finrad::core::campaign::BinOutcome::Failed { .. }
    ));
    assert!(report.fit.total.is_finite());
    assert!(
        report.fit.total <= plain.fit.total,
        "a dropped bin cannot add FIT"
    );
}

#[test]
fn poisoned_bin_is_excluded_from_integration() {
    let _g = fault_guard();
    let mut cfg = campaign_config();
    cfg.fault_plan.poison_bins = vec![1];
    let report = run_complete(cfg).expect("campaign must survive a NaN bin");
    assert_eq!(report.coverage.non_finite_bins, 1);
    assert!(!report.coverage.is_complete());
    assert!(report.coverage.flux_fraction < 1.0);
    assert!(report.fit.total.is_finite(), "NaN must not reach the FIT");
}

#[test]
fn all_bins_failed_is_no_coverage_not_zero_fit() {
    let _g = fault_guard();
    let mut cfg = campaign_config();
    cfg.fault_plan.fail_bins = (0..5).collect();
    match run_complete(cfg) {
        Err(CampaignError::NoCoverage { total_bins: 5 }) => {}
        other => panic!("expected NoCoverage, got {other:?}"),
    }
}

#[test]
fn seeded_checkpoint_corruption_is_always_detected() {
    let _g = fault_guard();
    let path = std::env::temp_dir().join(format!(
        "finrad-ckpt-{}-seeded-corruption",
        std::process::id()
    ));
    let ck = Checkpoint {
        fingerprint: config_fingerprint(&tiny_pipeline(), Particle::Alpha, vdd()),
        particle: Particle::Alpha,
        vdd_bits: vdd().volts().to_bits(),
        total_bins: 5,
        bins: vec![BinRecord::Ok {
            index: 0,
            pof_total: 0.25,
            pof_seu: 0.2,
            pof_mbu: 0.05,
            quarantined: 0,
            energy_joules: 1.0e-13,
            flux_per_m2_s: 1.0e-4,
        }],
    };
    for seed in 0..32u64 {
        ck.save(&path).unwrap();
        assert!(corrupt_checkpoint(&path, seed).unwrap());
        match Checkpoint::load(&path) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("seed {seed}: corruption undetected: {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}
