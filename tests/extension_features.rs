//! Integration tests of the features that go beyond the paper: noise
//! margins, upset-multiplicity spectra, the neutron engine, and the
//! programmatic voltage sweep.

use finrad::core::array::{DataPattern, MemoryArray};
use finrad::core::neutron::{NeutronSimulator, NeutronVolume};
use finrad::core::strike::{
    multiplicity_pmf, DepositMode, DirectionLaw, FlipModel, StrikeSimulator,
};
use finrad::core::sweep::VddSweep;
use finrad::prelude::*;
use finrad::sram::snm;
use finrad::transport::neutron::NeutronInteraction;

fn quick_table() -> PofTable {
    CellCharacterizer::new(
        Technology::soi_finfet_14nm(),
        CharacterizeOptions {
            settle: 5.0e-12,
            bisect_rel_tol: 0.1,
            ..CharacterizeOptions::default()
        },
    )
    .build_table(Voltage::from_volts(0.8), Variation::Nominal, 5)
    .expect("characterization")
}

#[test]
fn snm_and_qcrit_agree_on_the_vdd_trend() {
    // Both robustness metrics must weaken toward low Vdd.
    let tech = Technology::soi_finfet_14nm();
    let snm_lo = snm::hold_snm(&tech, Voltage::from_volts(0.7), 41).unwrap();
    let snm_hi = snm::hold_snm(&tech, Voltage::from_volts(1.1), 41).unwrap();
    assert!(snm_lo.snm.volts() < snm_hi.snm.volts());

    let ch = CellCharacterizer::new(
        tech,
        CharacterizeOptions {
            settle: 5.0e-12,
            bisect_rel_tol: 0.1,
            ..CharacterizeOptions::default()
        },
    );
    let none = std::collections::HashMap::new();
    let q_lo = ch
        .critical_charge(
            Voltage::from_volts(0.7),
            StrikeCombo::single(StrikeTarget::I1),
            &none,
        )
        .unwrap();
    let q_hi = ch
        .critical_charge(
            Voltage::from_volts(1.1),
            StrikeCombo::single(StrikeTarget::I1),
            &none,
        )
        .unwrap();
    assert!(q_lo.coulombs() < q_hi.coulombs());
}

#[test]
fn multiplicity_spectrum_dominated_by_single_bit() {
    let tech = Technology::soi_finfet_14nm();
    let array = MemoryArray::build(&tech, 5, 5, DataPattern::Checkerboard);
    let table = quick_table();
    let sim = StrikeSimulator::new(
        &array,
        FinTraversal::paper_default(),
        &table,
        DirectionLaw::IsotropicDown,
        DepositMode::ChordExact,
        FlipModel::Expected,
        None,
    );
    let pmf = sim.estimate_multiplicity(Particle::Alpha, Energy::from_mev(2.0), 8_000, 4, 3);
    assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(
        pmf[1] > 10.0 * pmf[2],
        "1-bit {} vs 2-bit {}",
        pmf[1],
        pmf[2]
    );
}

#[test]
fn multiplicity_pmf_is_a_distribution() {
    let pmf = multiplicity_pmf(&[0.1, 0.9, 0.5]);
    assert_eq!(pmf.len(), 4);
    assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    assert!(pmf.iter().all(|&p| (0.0..=1.0).contains(&p)));
}

#[test]
fn neutron_ser_well_below_direct_ionization() {
    // SOI's headline radiation property, checked end to end.
    let tech = Technology::soi_finfet_14nm();
    let array = MemoryArray::build(&tech, 4, 4, DataPattern::Checkerboard);
    let table = quick_table();
    let neutron = NeutronSimulator::new(
        &array,
        NeutronInteraction::silicon(),
        &table,
        NeutronVolume::default(),
    );
    let (n_fit, _) = neutron.ser(&NeutronSpectrum::sea_level(), 4, 10_000, 3);

    let mut cfg = PipelineConfig::smoke_test();
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.iterations_per_energy = 2_000;
    let pipeline = SerPipeline::new(cfg);
    let alpha = pipeline.run_with_table(Particle::Alpha, Voltage::from_volts(0.8), &table);
    assert!(
        n_fit.total < alpha.fit_total,
        "neutron {} FIT should sit below alpha {} FIT",
        n_fit.total,
        alpha.fit_total
    );
}

#[test]
fn sweep_reproduces_fig9_trends_programmatically() {
    let mut cfg = PipelineConfig::smoke_test();
    cfg.iterations_per_energy = 2_000;
    let pipeline = SerPipeline::new(cfg);
    let sweep = VddSweep::run(
        &pipeline,
        &[
            Voltage::from_volts(0.7),
            Voltage::from_volts(0.9),
            Voltage::from_volts(1.1),
        ],
    )
    .expect("sweep");
    for particle in Particle::ALL {
        let fit = sweep.fit_series(particle);
        assert!(fit[0].1 > fit[2].1, "{particle}: {fit:?}");
    }
    assert!(sweep.proton_to_alpha_steepness() > 1.0);
}

#[test]
fn waveform_csv_export_from_real_simulation() {
    use finrad::spice::analysis::{self, NewtonOptions, Phase, TimeStepPlan};
    let cell = SramCell::new(&Technology::soi_finfet_14nm(), Voltage::from_volts(0.8));
    let plan = TimeStepPlan::new(vec![Phase {
        duration: 1.0e-12,
        dt: 1.0e-13,
    }]);
    let ic = cell.initial_conditions(CellState::One);
    let res = analysis::transient(
        cell.circuit(),
        &plan,
        &ic,
        &[cell.q(), cell.qb()],
        &NewtonOptions::default(),
    )
    .expect("transient");
    let mut buf = Vec::new();
    res.write_csv(&mut buf).expect("csv");
    let text = String::from_utf8(buf).expect("utf8");
    assert!(text.starts_with("time_s,q,qb"));
    assert_eq!(text.lines().count(), res.times().len() + 1);
}
