//! Checkpoint/resume robustness of the campaign runtime.
//!
//! The load-bearing guarantee: a campaign interrupted at bin boundaries
//! and resumed (re-characterizing from the same seed, reloading per-bin
//! tallies bit-exactly from the checkpoint) produces a FIT rate
//! bit-identical to an uninterrupted pipeline run — and every way a
//! checkpoint file can be wrong surfaces as a typed error, never a panic
//! or a silently-wrong resume.

use finrad::core::campaign::{CampaignConfig, CampaignError, CampaignRunner, CampaignStatus};
use finrad::core::checkpoint::{config_fingerprint, BinRecord, Checkpoint, CheckpointError};
use finrad::prelude::*;
use std::fs;
use std::path::PathBuf;

/// Reduced config: full smoke pipeline, fewer MC iterations per bin.
fn tiny_pipeline() -> PipelineConfig {
    let mut c = PipelineConfig::smoke_test();
    c.iterations_per_energy = 100;
    c
}

fn vdd() -> Voltage {
    Voltage::from_volts(0.8)
}

/// A per-test temp path, removed on drop so failures don't leak state
/// into reruns.
struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("finrad-ckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_file(&p);
        TempCkpt(p)
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

/// A checkpoint whose fingerprint matches `tiny_pipeline()` but whose
/// tallies are fabricated — good enough for parse-level error tests that
/// never reach the Monte Carlo.
fn fabricated_checkpoint() -> Checkpoint {
    Checkpoint {
        fingerprint: config_fingerprint(&tiny_pipeline(), Particle::Alpha, vdd()),
        particle: Particle::Alpha,
        vdd_bits: vdd().volts().to_bits(),
        total_bins: 5,
        bins: vec![BinRecord::Ok {
            index: 0,
            pof_total: 0.25,
            pof_seu: 0.2,
            pof_mbu: 0.05,
            quarantined: 0,
            energy_joules: 1.0e-13,
            flux_per_m2_s: 1.0e-4,
        }],
    }
}

#[test]
fn kill_and_resume_is_bit_identical_to_uninterrupted_run() {
    let ckpt = TempCkpt::new("resume");
    let pipeline_cfg = tiny_pipeline();

    // Ground truth: one uninterrupted pipeline run.
    let uninterrupted = SerPipeline::new(pipeline_cfg.clone())
        .run(Particle::Alpha, vdd())
        .expect("uninterrupted run");

    // The same campaign, forced to stop every 2 bins — simulating a
    // process killed and restarted between snapshots.
    let mut cfg = CampaignConfig::new(pipeline_cfg, Particle::Alpha, vdd());
    cfg.checkpoint_path = Some(ckpt.0.clone());
    cfg.max_bins_per_run = Some(2);
    let runner = CampaignRunner::new(cfg);

    let mut pauses = Vec::new();
    let report = loop {
        match runner.resume().expect("resume") {
            CampaignStatus::Paused { completed, total } => {
                pauses.push((completed, total));
                assert!(ckpt.0.exists(), "pause must leave a checkpoint");
            }
            CampaignStatus::Complete(report) => break report,
        }
    };
    assert_eq!(pauses, vec![(2, 5), (4, 5)]);

    // Bit-identical, not approximately-equal.
    assert_eq!(
        report.fit.total.to_bits(),
        uninterrupted.fit_total.to_bits()
    );
    assert_eq!(report.fit.seu.to_bits(), uninterrupted.fit_seu.to_bits());
    assert_eq!(report.fit.mbu.to_bits(), uninterrupted.fit_mbu.to_bits());
    assert!(report.coverage.is_complete());
    assert_eq!(report.coverage.flux_fraction, 1.0);

    // Resuming a completed campaign reloads every bin from the checkpoint
    // and integrates to the same bits without re-running any Monte Carlo.
    match runner.resume().expect("resume of complete campaign") {
        CampaignStatus::Complete(again) => {
            assert_eq!(again.fit.total.to_bits(), report.fit.total.to_bits());
        }
        CampaignStatus::Paused { .. } => panic!("complete campaign paused"),
    }

    // Hand-corrupt the file: resume must refuse with a typed error...
    let text = fs::read_to_string(&ckpt.0).unwrap();
    let corrupted = text.replacen("bin 0 ok", "bin 0 ko", 1);
    assert_ne!(corrupted, text);
    fs::write(&ckpt.0, corrupted).unwrap();
    match runner.resume() {
        Err(CampaignError::Checkpoint(CheckpointError::Corrupt(_))) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // ...while a fresh run proceeds, overwriting the bad file.
    match runner.run().expect("fresh run after corruption") {
        CampaignStatus::Paused { completed, total } => {
            assert_eq!((completed, total), (2, 5));
        }
        CampaignStatus::Complete(_) => panic!("max_bins_per_run ignored"),
    }
    assert!(
        Checkpoint::load(&ckpt.0).is_ok(),
        "fresh run rewrote the file"
    );
}

#[test]
fn truncated_checkpoint_is_a_typed_error() {
    // Tail cut into the checksum line: the parser itself sees truncation.
    let ckpt = TempCkpt::new("truncated");
    fabricated_checkpoint().save(&ckpt.0).unwrap();
    let text = fs::read_to_string(&ckpt.0).unwrap();
    fs::write(&ckpt.0, &text[..text.len() - 10]).unwrap();

    let mut cfg = CampaignConfig::new(tiny_pipeline(), Particle::Alpha, vdd());
    cfg.checkpoint_path = Some(ckpt.0.clone());
    match CampaignRunner::new(cfg).resume() {
        Err(CampaignError::CheckpointTruncated { path, .. }) => assert_eq!(path, ckpt.0),
        other => panic!("expected CheckpointTruncated, got {other:?}"),
    }
}

#[test]
fn checkpoint_cut_mid_line_is_truncation_not_corruption() {
    // Cut inside the header line: the parser alone can only call this a
    // bad header (Corrupt), but a complete snapshot always ends with a
    // newline — the loader must classify the partial write as
    // truncation, not corruption.
    let ckpt = TempCkpt::new("midline");
    fabricated_checkpoint().save(&ckpt.0).unwrap();
    let text = fs::read_to_string(&ckpt.0).unwrap();
    fs::write(&ckpt.0, &text[..5]).unwrap();

    let mut cfg = CampaignConfig::new(tiny_pipeline(), Particle::Alpha, vdd());
    cfg.checkpoint_path = Some(ckpt.0.clone());
    match CampaignRunner::new(cfg).resume() {
        Err(CampaignError::CheckpointTruncated { detail, .. }) => {
            assert!(detail.contains("cut mid-line"), "detail: {detail}")
        }
        other => panic!("expected CheckpointTruncated, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let ckpt = TempCkpt::new("version");
    fabricated_checkpoint().save(&ckpt.0).unwrap();
    let text = fs::read_to_string(&ckpt.0).unwrap();
    fs::write(&ckpt.0, text.replacen("finradckpt 1", "finradckpt 99", 1)).unwrap();

    let mut cfg = CampaignConfig::new(tiny_pipeline(), Particle::Alpha, vdd());
    cfg.checkpoint_path = Some(ckpt.0.clone());
    match CampaignRunner::new(cfg).resume() {
        Err(CampaignError::Checkpoint(CheckpointError::VersionMismatch { found: 99 })) => {}
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn checkpoint_from_different_config_is_refused() {
    let ckpt = TempCkpt::new("config");
    fabricated_checkpoint().save(&ckpt.0).unwrap();

    // Same campaign shape, different seed: the tallies in the file would
    // be statistically valid but belong to a different run.
    let mut other = tiny_pipeline();
    other.seed ^= 1;
    let mut cfg = CampaignConfig::new(other, Particle::Alpha, vdd());
    cfg.checkpoint_path = Some(ckpt.0.clone());
    match CampaignRunner::new(cfg).resume() {
        Err(CampaignError::ConfigMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn missing_checkpoint_path_runs_fresh() {
    // No checkpoint configured at all: the campaign must behave exactly
    // like the bare pipeline (and never touch the filesystem).
    let cfg = CampaignConfig::new(tiny_pipeline(), Particle::Alpha, vdd());
    let status = CampaignRunner::new(cfg).resume().expect("plain run");
    match status {
        CampaignStatus::Complete(report) => {
            let expect = SerPipeline::new(tiny_pipeline())
                .run(Particle::Alpha, vdd())
                .unwrap();
            assert_eq!(report.fit.total.to_bits(), expect.fit_total.to_bits());
            assert_eq!(report.outcomes.len(), 5);
        }
        CampaignStatus::Paused { .. } => panic!("unbounded run paused"),
    }
}
