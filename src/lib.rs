//! # finrad — cross-layer soft-error analysis of SOI FinFET SRAMs
//!
//! A from-scratch Rust reproduction of *"Radiation-Induced Soft Error
//! Analysis of SRAMs in SOI FinFET Technology: A Device to Circuit
//! Approach"* (Kiamehr, Osiecki, Tahoori, Nassif — DAC 2014), including
//! every substrate the paper's flow depends on:
//!
//! | Layer | Crate | Replaces |
//! |---|---|---|
//! | particle transport | [`transport`] | Geant4 |
//! | radiation environment | [`environment`] | measured flux data |
//! | circuit simulation | [`spice`] | proprietary SPICE |
//! | device models | [`finfet`] | 14 nm SOI FinFET PDK |
//! | cell characterization | [`sram`] | — |
//! | array-level SER engine | [`core`] | — (the paper's contribution) |
//!
//! This facade crate re-exports everything and provides a [`prelude`] for
//! application code; the runnable `examples/` and the figure-regeneration
//! binaries in `finrad-bench` show the intended usage.
//!
//! # Quick start
//!
//! ```no_run
//! use finrad::prelude::*;
//!
//! let pipeline = SerPipeline::new(PipelineConfig::paper_baseline());
//! let report = pipeline.run(Particle::Alpha, Voltage::from_volts(0.8))?;
//! println!(
//!     "alpha SER at 0.8 V: {:.3e} FIT ({:.2}% MBU/SEU)",
//!     report.fit_total,
//!     report.mbu_to_seu_percent()
//! );
//! # Ok::<(), finrad::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub use finrad_core as core;
pub use finrad_environment as environment;
pub use finrad_finfet as finfet;
pub use finrad_geometry as geometry;
pub use finrad_numerics as numerics;
pub use finrad_spice as spice;
pub use finrad_sram as sram;
pub use finrad_transport as transport;
pub use finrad_units as units;

/// The most common imports for application code.
pub mod prelude {
    pub use finrad_core::array::{DataPattern, MemoryArray};
    pub use finrad_core::campaign::{
        BinOutcome, CampaignConfig, CampaignError, CampaignReport, CampaignRunner, CampaignStatus,
        Coverage,
    };
    pub use finrad_core::checkpoint::{Checkpoint, CheckpointError};
    pub use finrad_core::fit::{fit_rate, fit_rate_checked, FitRate, PofBin};
    pub use finrad_core::pipeline::{PipelineConfig, SerPipeline, SerReport};
    pub use finrad_core::service::{
        backoff_schedule, CampaignService, DeadLetter, JobError, JobId, JobResult, JobStatus,
        ServiceConfig,
    };
    pub use finrad_core::strike::{DepositMode, DirectionLaw, FlipModel, StrikeSimulator};
    pub use finrad_core::CoreError;
    pub use finrad_environment::{AlphaSpectrum, NeutronSpectrum, ProtonSpectrum, Spectrum};
    pub use finrad_finfet::{FinFet, Polarity, Technology, VariationModel};
    pub use finrad_spice::{Circuit, PulseShape, RecoveryRung, RecoveryTrace, SourceWaveform};
    pub use finrad_sram::{
        CellCharacterizer, CellState, CharacterizeOptions, PofCurve, PofTable, SramCell,
        StrikeCombo, StrikeTarget, TransistorRole, Variation,
    };
    pub use finrad_transport::fin::{FinGeometry, FinTraversal};
    pub use finrad_transport::lut::EhpLut;
    pub use finrad_transport::stopping::StoppingModel;
    pub use finrad_transport::straggling::StragglingModel;
    pub use finrad_units::{Area, Charge, Current, Energy, Flux, Length, Particle, Time, Voltage};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_all_layers() {
        use crate::prelude::*;
        let tech = Technology::soi_finfet_14nm();
        let cell = SramCell::new(&tech, Voltage::from_volts(0.8));
        assert_eq!(cell.vdd().volts(), 0.8);
        let model = StoppingModel::silicon();
        assert!(
            model
                .stopping(Particle::Alpha, Energy::from_mev(1.0))
                .kev_per_um()
                > 0.0
        );
        let spectrum = AlphaSpectrum::paper_default();
        assert!(spectrum.total_flux().per_cm2_hour() > 0.0);
    }
}
