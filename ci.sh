#!/usr/bin/env bash
# Full CI gate, runnable locally. Everything is offline: the workspace has
# no external dependencies, so --offline both enforces and documents that.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

echo "==> cargo test -p finrad-units --doc (dimensional compile_fail suite)"
cargo test -q --offline -p finrad-units --doc

echo "==> cargo test --features fault-injection (robustness suite)"
cargo test -q --offline --features fault-injection --test fault_injection

echo "==> cargo test --features fault-injection (service supervision suite)"
cargo test -q --offline --features fault-injection --test service_supervision

echo "==> campaign service smoke example (under fault injection)"
cargo run -q --offline --release --features fault-injection --example campaign_service

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo xtask lint (deny-all, all families capped at 0, JSON + SARIF)"
cargo xtask lint --deny-all \
  --max unit-safety=0 \
  --max raw-escape-audit=0 \
  --max panic-freedom=0 \
  --max metrics-key-registry=0 \
  --max seed-discipline=0 \
  --max shared-state-audit=0 \
  --max checkpoint-schema-drift=0 \
  --max unused-suppression=0 \
  --max lock-order-audit=0 \
  --max guard-lifetime-audit=0 \
  --max cancellation-responsiveness=0 \
  --max result-discard-audit=0 \
  --json target/lint-report.json \
  --sarif target/lint-report.sarif

echo "==> cargo xtask lint --check-report (JSON + SARIF schema gates)"
cargo xtask lint --check-report target/lint-report.json
cargo xtask lint --check-report target/lint-report.sarif

echo "==> cargo xtask lint --diff-base (no diagnostics beyond the committed base)"
cargo xtask lint --diff-base xtask/lint-report-base.json

echo "==> cargo xtask bench --smoke (trajectory schema + hot-path counter gate)"
cargo xtask bench --smoke --out target/BENCH_smoke.json
cargo xtask bench --check target/BENCH_smoke.json \
  --require-counter sram.characterize.dcop_cache_hits \
  --require-counter spice.newton.warm_starts \
  --require-counter spice.newton.lu_structured \
  --require-counter spice.newton.jacobian_reuses \
  --require-counter spice.transient.lte_step_growths

echo "==> committed trajectory files carry the hot-path counters"
cargo xtask bench --check BENCH_0005.json \
  --require-counter sram.characterize.dcop_cache_hits \
  --require-counter spice.newton.warm_starts \
  --require-counter spice.newton.lu_structured
cargo xtask bench --check BENCH_0006.json \
  --require-counter sram.characterize.dcop_cache_hits \
  --require-counter spice.newton.warm_starts \
  --require-counter spice.newton.lu_structured \
  --require-counter spice.newton.jacobian_reuses \
  --require-counter spice.transient.lte_step_growths

echo "==> pinned benches did not regress vs the previous trajectory file"
cargo xtask bench --check BENCH_0006.json --diff-base BENCH_0005.json

echo "CI gate passed."
