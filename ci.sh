#!/usr/bin/env bash
# Full CI gate, runnable locally. Everything is offline: the workspace has
# no external dependencies, so --offline both enforces and documents that.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

echo "==> cargo test --features fault-injection (robustness suite)"
cargo test -q --offline --features fault-injection --test fault_injection

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo xtask lint --deny-all --max panic-freedom=0"
cargo xtask lint --deny-all --max panic-freedom=0

echo "==> cargo xtask bench --smoke (trajectory schema gate)"
cargo xtask bench --smoke --out target/BENCH_smoke.json
cargo xtask bench --check target/BENCH_smoke.json

echo "CI gate passed."
